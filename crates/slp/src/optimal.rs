//! Exact per-round pack selection ([`BenefitKind::Optimal`]).
//!
//! goSLP (see PAPERS.md) shows that pairwise pack selection can be
//! solved globally instead of greedily. This module does so without a
//! solver dependency, mirroring the modulo scheduler's homegrown
//! branch-and-bound discipline: over one round's candidates it searches
//! for the conflict-free, acyclic subset maximizing the total *in-set*
//! net benefit under the [`BenefitKind::Cycles`] prices — in-set
//! meaning each member is priced against the chosen set itself, so a
//! candidate's speculative reuse becomes exact the moment its partner
//! is in the set.
//!
//! Three contracts shape the search:
//!
//! * **Incumbent seeding** — the greedy result (probed speculatively
//!   through [`SelectHooks::checkpoint`]/`restore`) is the starting
//!   incumbent, so the exact selector can never return a set valued
//!   worse than greedy's.
//! * **Budget fallback** — each round spends at most `budget`
//!   include-steps; an exhausted budget abandons the search and replays
//!   the greedy probe deterministically (recorded in
//!   [`SelectStats::budget_fallbacks`]).
//! * **Replay in chosen order** — hook side effects (`SETMAXWL`
//!   commits) happen only after the search, by replaying the winning
//!   set through [`SelectHooks::on_select`] in ascending candidate
//!   order; a veto during that replay (the set's *cumulative* accuracy
//!   effect can exceed what pairwise conflicts admit) rolls back and
//!   falls back to greedy ([`SelectStats::veto_fallbacks`]).

use crate::benefit::{BenefitKind, BenefitModel};
use crate::candidate::{CandidateView, Round};
use crate::conflict::conflicts;
use crate::group::{closes_cycle, SimdGroup};
use crate::select::{greedy_loop, SelectHooks};
use slpwlo_ir::dfg::Dfg;
use slpwlo_targets::{CycleCache, TargetModel};

/// Value-comparison slack: two selections within this are considered
/// equal, so float dust can neither dethrone the greedy incumbent nor
/// flip a verdict between runs.
const EPS: f64 = 1e-9;

/// Counters of the exact selector's behaviour, accumulated across
/// rounds (and blocks) of one flow run. All zeros under the greedy
/// kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Rounds the branch-and-bound search ran on (rounds with at least
    /// one live candidate).
    pub rounds: u64,
    /// Rounds where the search found and committed a set strictly
    /// better than the greedy incumbent.
    pub improved: u64,
    /// Rounds abandoned to the greedy fallback because the include-step
    /// budget ran out.
    pub budget_fallbacks: u64,
    /// Rounds where replaying the improved set was vetoed by the hooks
    /// (cumulative accuracy effect) and greedy was restored instead.
    pub veto_fallbacks: u64,
    /// Flow-level arbitrations that preferred the greedy leg's schedule
    /// over the exact leg's (the exact selector optimizes the benefit
    /// model, the flow's contract is real scheduled cycles).
    pub portfolio_fallbacks: u64,
}

impl SelectStats {
    /// Total rounds that fell back to greedy for any per-round reason.
    pub fn fallbacks(&self) -> u64 {
        self.budget_fallbacks + self.veto_fallbacks
    }
}

/// In-set value of a chosen candidate subset: the sum over members of
/// their net benefit priced against the chosen set itself (liveness
/// off, so no speculative optimism — a reuse either resolves against a
/// chosen or prior group or is paid as packing traffic), each cleared
/// against the model's admission margin so that adding a candidate that
/// merely breaks even does not count as an improvement.
pub fn set_value(
    model: &BenefitModel<'_>,
    round: &Round,
    prior: &[SimdGroup],
    chosen: &[usize],
) -> f64 {
    let mut all: Vec<SimdGroup> = prior.to_vec();
    all.extend(chosen.iter().map(|&i| round.merged(i).clone()));
    let dead = vec![false; round.candidates.len()];
    value_with(model, round, &dead, chosen, &all)
}

fn value_with(
    model: &BenefitModel<'_>,
    _round: &Round,
    dead: &[bool],
    chosen: &[usize],
    all: &[SimdGroup],
) -> f64 {
    let margin = model.admission_margin();
    chosen
        .iter()
        .map(|&i| model.assess(i, dead, all).net() - margin)
        .sum()
}

/// Reference optimum by subset enumeration, for verification on small
/// rounds: the feasible (pairwise structurally conflict-free, acyclic
/// against `prior`) subset of live candidates with maximal
/// [`set_value`], against the empty set's baseline of zero. Exponential
/// in the live count — callers gate the size.
pub fn exhaustive_best(
    dfg: &Dfg,
    model: &BenefitModel<'_>,
    round: &Round,
    prior: &[SimdGroup],
    alive: &[bool],
) -> (Vec<usize>, f64) {
    let live: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| i)
        .collect();
    assert!(
        live.len() <= 20,
        "exhaustive_best is for small rounds; got {} live candidates",
        live.len()
    );
    let mut best: (Vec<usize>, f64) = (Vec::new(), 0.0);
    'subset: for mask in 1u64..(1u64 << live.len()) {
        let subset: Vec<usize> = live
            .iter()
            .enumerate()
            .filter(|&(b, _)| mask & (1 << b) != 0)
            .map(|(_, &i)| i)
            .collect();
        for (a, &i) in subset.iter().enumerate() {
            for &j in &subset[a + 1..] {
                if conflicts(dfg, round, i, j) {
                    continue 'subset;
                }
            }
        }
        // Incremental acyclicity in subset order: if the full coarsened
        // graph were cyclic, the member completing the cycle would be
        // caught when added.
        let mut sel: Vec<SimdGroup> = prior.to_vec();
        for &i in &subset {
            if closes_cycle(dfg, &sel, round.merged(i)) {
                continue 'subset;
            }
            sel.push(round.merged(i).clone());
        }
        let v = set_value(model, round, prior, &subset);
        if v > best.1 + EPS {
            best = (subset, v);
        }
    }
    best
}

/// One exact selection pass over a round. Called from
/// `run_selection_stats` with the views, validated liveness and
/// conflict pairs it already computed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_selection_optimal(
    dfg: &Dfg,
    target: &TargetModel,
    round: &Round,
    selected_so_far: &[SimdGroup],
    hooks: &mut dyn SelectHooks,
    views: &[CandidateView],
    alive: Vec<bool>,
    conf: &[(usize, usize)],
    budget: u32,
    stats: &mut SelectStats,
) -> Vec<SimdGroup> {
    let pricing = BenefitKind::Optimal { budget }.pricing();
    if !alive.iter().any(|&a| a) {
        return Vec::new();
    }
    stats.rounds += 1;

    // Greedy probe: run the full greedy loop speculatively to learn its
    // chosen set (the incumbent), then roll every hook side effect back
    // so the search prices candidates at the round-entry spec state —
    // the same state greedy's own first iteration saw.
    hooks.checkpoint();
    let probe = greedy_loop(
        dfg,
        target,
        round,
        selected_so_far,
        hooks,
        pricing,
        views,
        alive.clone(),
        conf,
    );
    hooks.restore();

    let max_wl = target.max_wl();
    let prices = CycleCache::new(target);
    let (best_set, exhausted) = {
        let oracle: &dyn SelectHooks = &*hooks;
        let model = BenefitModel::with_context_shared(
            dfg,
            round,
            &prices,
            pricing,
            |n| oracle.current_wl(n).unwrap_or(max_wl),
            |n| oracle.current_fwl(n),
        )
        .assume_equalization(oracle.equalization_follows())
        .assume_sched(oracle.sched_kind());
        search(
            dfg,
            &model,
            round,
            selected_so_far,
            &alive,
            conf,
            budget,
            &probe.chosen,
        )
    };

    if exhausted {
        stats.budget_fallbacks += 1;
        return replay(dfg, hooks, views, selected_so_far, &probe.chosen, false)
            .expect("lax replay never fails");
    }
    let Some(mut set) = best_set else {
        // Greedy already matched the searched optimum: replay its
        // probe. From the restored round-entry state the same accepted
        // selections receive the same answers, so this is bitwise the
        // greedy outcome.
        return replay(dfg, hooks, views, selected_so_far, &probe.chosen, false)
            .expect("lax replay never fails");
    };
    // Commit the improved set in ascending candidate order — a fixed,
    // deterministic replay order for the hooks' side effects.
    set.sort_unstable();
    hooks.checkpoint();
    match replay(dfg, hooks, views, selected_so_far, &set, true) {
        Some(groups) => {
            stats.improved += 1;
            groups
        }
        None => {
            // The set's cumulative accuracy effect was vetoed mid-replay:
            // roll back and fall back to the greedy incumbent.
            stats.veto_fallbacks += 1;
            hooks.restore();
            replay(dfg, hooks, views, selected_so_far, &probe.chosen, false)
                .expect("lax replay never fails")
        }
    }
}

/// Branch-and-bound over the round's candidates. Returns the best set
/// strictly better than the greedy incumbent (`None` when greedy is
/// already optimal among what was searched) and whether the budget ran
/// out (in which case the best set is meaningless and discarded).
#[allow(clippy::too_many_arguments)]
fn search(
    dfg: &Dfg,
    model: &BenefitModel<'_>,
    round: &Round,
    prior: &[SimdGroup],
    alive: &[bool],
    conf: &[(usize, usize)],
    budget: u32,
    incumbent: &[usize],
) -> (Option<Vec<usize>>, bool) {
    // Per-candidate optimistic bound: the shallow assessment treats
    // every speculative flow as certain reuse, which upper-bounds the
    // candidate's in-set net over any chosen set.
    let margin = model.admission_margin();
    let n = round.candidates.len();
    let mut opt = vec![f64::NEG_INFINITY; n];
    for (i, &a) in alive.iter().enumerate() {
        if a {
            opt[i] = model.assess_optimistic(i, alive, prior).net() - margin;
        }
    }

    // Restrict the search to candidates reachable from a positive-bound
    // seed over reuse edges: pricing interactions between candidates
    // travel exclusively along operand/result superword matches, so a
    // connected component whose members all bound non-positive cannot
    // contribute positive value to any set and is dropped whole.
    let mut in_pool = vec![false; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| alive[i] && opt[i] > 0.0).collect();
    for &i in &queue {
        in_pool[i] = true;
    }
    while let Some(i) = queue.pop() {
        for p in model.reuse_partners(i, alive) {
            if !in_pool[p] {
                in_pool[p] = true;
                queue.push(p);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| in_pool[i]).collect();
    // Re-tighten the static bounds against the pool itself: partners
    // outside the pool can never be chosen, so optimism extended to
    // them (the full `alive` set above — needed first, to make the
    // reachability closure sound) only loosens every cap derived from
    // `opt` below.
    let pool_alive: Vec<bool> = (0..n).map(|i| in_pool[i]).collect();
    for &i in &order {
        opt[i] = model.assess_optimistic(i, &pool_alive, prior).net() - margin;
    }
    // Best-bound-first ordering tightens the suffix bound fastest;
    // total_cmp plus the index tie-break keeps it deterministic.
    order.sort_unstable_by(|&a, &b| opt[b].total_cmp(&opt[a]).then(a.cmp(&b)));

    // Conflict adjacency as bitsets over candidate indices, so an
    // include bans everything structurally incompatible with it in one
    // masked AND — and, crucially, so the suffix bound can skip banned
    // candidates instead of crediting them with value they can never
    // contribute. Dense rounds (CONV's fully-unrolled taps reach 80+
    // mutually overlapping candidates) are intractable under the
    // conflict-blind bound and close in a few thousand steps under this
    // one.
    let words = n.div_ceil(64);
    let mut conf_mask = vec![0u64; n * words];
    for &(a, b) in conf {
        conf_mask[a * words + b / 64] |= 1 << (b % 64);
        conf_mask[b * words + a / 64] |= 1 << (a % 64);
    }
    let mut avail = vec![0u64; words];
    for &i in &order {
        avail[i / 64] |= 1 << (i % 64);
    }

    // Greedy clique cover of the pool under the conflict relation, in
    // best-bound-first order: each candidate joins the first clique it
    // conflicts with *entirely*, else opens its own. At most one member
    // of a clique can ever be chosen, so a clique's contribution to any
    // completion is bounded by its best still-available member — far
    // tighter than summing every positive candidate on rounds built
    // from shared items (CFIR's first round has 148 positive candidates
    // in item-sharing cliques; the per-candidate sum never prunes
    // there, the cover bound closes the search).
    let mut cliques: Vec<(Vec<usize>, Vec<u64>)> = Vec::new();
    for &i in &order {
        let row = &conf_mask[i * words..(i + 1) * words];
        let home = cliques
            .iter()
            .position(|(_, members)| members.iter().zip(row).all(|(m, r)| m & !r == 0));
        let c = home.unwrap_or_else(|| {
            cliques.push((Vec::new(), vec![0u64; words]));
            cliques.len() - 1
        });
        cliques[c].0.push(i);
        cliques[c].1[i / 64] |= 1 << (i % 64);
    }
    let clique_members: Vec<Vec<usize>> = cliques.into_iter().map(|(m, _)| m).collect();

    let incumbent_value = set_value(model, round, prior, incumbent);

    if std::env::var_os("SLPWLO_SEARCH_DEBUG").is_some() {
        let pos = order.iter().filter(|&&i| opt[i] > 0.0).count();
        let live_conf = conf
            .iter()
            .filter(|&&(a, b)| in_pool[a] && in_pool[b])
            .count();
        let root: f64 = clique_members
            .iter()
            .map(|m| m.iter().map(|&i| opt[i].max(0.0)).fold(0.0, f64::max))
            .sum();
        let sizes: Vec<usize> = clique_members.iter().map(Vec::len).collect();
        eprintln!(
            "search: n={n} pool={} positive={pos} conf-pairs={live_conf} cliques={} root-bound={root:.3} incumbent={incumbent_value:.3} sizes={sizes:?}",
            order.len(),
            clique_members.len()
        );
    }

    let dead = vec![false; n];
    let mut s = Search {
        dfg,
        model,
        round,
        order: &order,
        opt: &opt,
        conf_mask: &conf_mask,
        words,
        cliques: &clique_members,
        dead: &dead,
        margin,
        budget,
        exhausted: false,
        chosen: Vec::new(),
        sel: prior.to_vec(),
        prior_len: prior.len(),
        best_value: incumbent_value,
        best_set: None,
        alive_buf: vec![false; n],
        nodes: 0,
        prunes: 0,
    };
    s.dfs(0, &avail);
    if std::env::var_os("SLPWLO_SEARCH_DEBUG").is_some() {
        eprintln!(
            "search end: nodes={} prunes={} includes={} exhausted={} best={:.3} (incumbent {incumbent_value:.3})",
            s.nodes,
            s.prunes,
            budget - s.budget,
            s.exhausted,
            s.best_value
        );
    }
    (s.best_set, s.exhausted)
}

struct Search<'a, 'm> {
    dfg: &'a Dfg,
    model: &'a BenefitModel<'m>,
    round: &'a Round,
    order: &'a [usize],
    opt: &'a [f64],
    /// Row-major `order`-independent adjacency: bit `j` of row `i` is
    /// set iff candidates `i` and `j` structurally conflict.
    conf_mask: &'a [u64],
    words: usize,
    /// Clique cover of the pool; members of each clique in descending
    /// optimistic-bound order, mutually conflicting.
    cliques: &'a [Vec<usize>],
    dead: &'a [bool],
    margin: f64,
    budget: u32,
    exhausted: bool,
    /// Candidate indices of the current partial set, in inclusion order.
    chosen: Vec<usize>,
    /// Prior groups plus the chosen groups (the pricing context).
    sel: Vec<SimdGroup>,
    prior_len: usize,
    best_value: f64,
    best_set: Option<Vec<usize>>,
    /// Scratch liveness slice for path-dependent optimistic bounds.
    alive_buf: Vec<bool>,
    nodes: u64,
    prunes: u64,
}

impl Search<'_, '_> {
    /// `avail` holds the candidates still reachable on this path: the
    /// pool minus everything already decided (included, excluded, or
    /// conflicting with a chosen member). Every bound term is
    /// *path-dependent*: a member's contribution to any completion is
    /// capped by its optimistic assessment against the partners still
    /// in `avail` (chosen partners resolve through `sel` regardless),
    /// and each clique surrenders at most one member — so the chosen
    /// members' dynamic total plus the cover's best-available mass
    /// bounds every completion of this partial set. Bounding the chosen
    /// side statically instead is fatal on large rounds: round-entry
    /// optimism alone can exceed the incumbent at depth 15, and the
    /// search never prunes again below that.
    fn dfs(&mut self, k: usize, avail: &[u64]) {
        if self.exhausted {
            return;
        }
        self.nodes += 1;
        let Some((pos, i)) = self
            .order
            .iter()
            .enumerate()
            .skip(k)
            .find(|&(_, &i)| avail[i / 64] & (1 << (i % 64)) != 0)
            .map(|(pos, &i)| (pos, i))
        else {
            return;
        };
        // Refresh the scratch liveness to this subtree's reachable set.
        for (idx, a) in self.alive_buf.iter_mut().enumerate() {
            *a = avail[idx / 64] & (1 << (idx % 64)) != 0;
        }
        let mut bound: f64 = self
            .chosen
            .iter()
            .map(|&j| {
                self.model
                    .assess_optimistic(j, &self.alive_buf, &self.sel)
                    .net()
                    - self.margin
            })
            .sum();
        // Add each clique's best still-available member at its dynamic
        // value. Members are walked in descending static-bound order,
        // which caps the dynamic value, so the walk stops early; the
        // whole sum stops as soon as it proves the subtree can still
        // beat the best (a full sum is only needed to *prune*).
        for members in self.cliques {
            if bound > self.best_value + EPS {
                break;
            }
            let mut best_m = 0.0f64;
            for &m in members {
                if self.opt[m] <= best_m {
                    break;
                }
                if avail[m / 64] & (1 << (m % 64)) == 0 {
                    continue;
                }
                let d = self
                    .model
                    .assess_optimistic(m, &self.alive_buf, &self.sel)
                    .net()
                    - self.margin;
                best_m = best_m.max(d);
            }
            bound += best_m.max(0.0);
        }
        if bound <= self.best_value + EPS {
            self.prunes += 1;
            return;
        }
        // Structural conflicts with the chosen set are pre-banned in
        // `avail`; only the (set-dependent) cycle test remains.
        if !closes_cycle(self.dfg, &self.sel, self.round.merged(i)) {
            if self.budget == 0 {
                self.exhausted = true;
                return;
            }
            self.budget -= 1;
            self.chosen.push(i);
            self.sel.push(self.round.merged(i).clone());
            let v = value_with(self.model, self.round, self.dead, &self.chosen, &self.sel);
            if v > self.best_value + EPS {
                self.best_value = v;
                self.best_set = Some(self.chosen.clone());
            }
            let mut narrowed = avail.to_vec();
            narrowed[i / 64] &= !(1 << (i % 64));
            let row = &self.conf_mask[i * self.words..(i + 1) * self.words];
            for (w, c) in narrowed.iter_mut().zip(row) {
                *w &= !c;
            }
            self.dfs(pos + 1, &narrowed);
            self.chosen.pop();
            self.sel.truncate(self.prior_len + self.chosen.len());
            if self.exhausted {
                return;
            }
        }
        // Exclusion branch: dropping the bit keeps `avail` an exact
        // image of what this subtree may still use, which is what lets
        // the clique bound discount the candidate just passed over.
        let mut narrowed = avail.to_vec();
        narrowed[i / 64] &= !(1 << (i % 64));
        self.dfs(pos + 1, &narrowed);
    }
}

/// Applies a chosen set through the hooks, in the order given. In
/// strict mode (the improved set) any rejection — a group that now
/// closes a cycle, or an `on_select` veto — aborts with `None`. In lax
/// mode (the greedy probe's log, replayed from the identical restored
/// state) rejections are skipped; they cannot actually occur, because
/// the probe only logged accepted selections and the replay reproduces
/// the probe's state trajectory write for write.
fn replay(
    dfg: &Dfg,
    hooks: &mut dyn SelectHooks,
    views: &[CandidateView],
    selected_so_far: &[SimdGroup],
    chosen: &[usize],
    strict: bool,
) -> Option<Vec<SimdGroup>> {
    let mut selected: Vec<SimdGroup> = selected_so_far.to_vec();
    let mut new_groups: Vec<SimdGroup> = Vec::new();
    for &i in chosen {
        if closes_cycle(dfg, &selected, &views[i].group) || !hooks.on_select(&views[i]) {
            if strict {
                return None;
            }
            continue;
        }
        selected.push(views[i].group.clone());
        new_groups.push(views[i].group.clone());
    }
    Some(new_groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{extract_rounds_stats, run_selection_stats, NoHooks};
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::{st240, vex, xentium};

    fn fir_dfg() -> Dfg {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_stmts(&k, &blocks[0].stmts)
    }

    /// Per-round: the committed set's value must match the exhaustive
    /// optimum (on rounds small enough to enumerate), and the search
    /// must never trip its default budget on this fixture.
    #[test]
    fn search_matches_exhaustive_enumeration() {
        let dfg = fir_dfg();
        let mut enumerated = 0usize;
        for target in [xentium(), vex(4), st240()] {
            let mut groups: Vec<SimdGroup> = Vec::new();
            let mut stats = SelectStats::default();
            loop {
                let round = Round::new(&dfg, &target, &groups);
                let n = round.candidates.len();
                let selected = run_selection_stats(
                    &dfg,
                    &target,
                    &round,
                    &groups,
                    &mut NoHooks,
                    BenefitKind::optimal(),
                    &mut stats,
                );
                if n <= 14 {
                    enumerated += 1;
                    let alive = vec![true; n];
                    let model =
                        BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| {
                            target.max_wl()
                        });
                    let chosen_idx: Vec<usize> = selected
                        .iter()
                        .map(|g| {
                            (0..n)
                                .find(|&i| round.merged(i).elems == g.elems)
                                .expect("chosen group must be a round candidate")
                        })
                        .collect();
                    let v = set_value(&model, &round, &groups, &chosen_idx);
                    let (_, best_v) = exhaustive_best(&dfg, &model, &round, &groups, &alive);
                    assert!(
                        v + 1e-6 >= best_v,
                        "{}: chosen value {v} below exhaustive optimum {best_v}",
                        target.name
                    );
                }
                if selected.is_empty() {
                    break;
                }
                crate::select::absorb_selected(&mut groups, selected);
            }
            assert!(stats.rounds > 0, "{}: no round searched", target.name);
            assert_eq!(
                stats.budget_fallbacks, 0,
                "{}: budget too small",
                target.name
            );
        }
        assert!(enumerated > 0, "no round was small enough to enumerate");
    }

    /// A zero budget degrades to exactly the greedy selection.
    #[test]
    fn zero_budget_replays_greedy_exactly() {
        let dfg = fir_dfg();
        for target in [xentium(), vex(4)] {
            let mut stats = SelectStats::default();
            let exact = extract_rounds_stats(
                &dfg,
                &target,
                &mut NoHooks,
                BenefitKind::Optimal { budget: 0 },
                &mut stats,
            );
            let greedy = crate::select::extract_rounds_with(
                &dfg,
                &target,
                &mut NoHooks,
                BenefitKind::Cycles,
            );
            assert_eq!(
                exact, greedy,
                "{}: budget-0 diverged from greedy",
                target.name
            );
            assert_eq!(stats.improved, 0);
            assert_eq!(stats.veto_fallbacks, 0);
        }
    }

    /// The exact selector's fixpoint is never valued below greedy's on
    /// the same block, and the default budget never trips.
    #[test]
    fn optimal_never_loses_to_greedy_per_round() {
        let dfg = fir_dfg();
        for target in [xentium(), vex(1), vex(4), st240()] {
            let mut stats = SelectStats::default();
            let mut groups: Vec<SimdGroup> = Vec::new();
            loop {
                let round = Round::new(&dfg, &target, &groups);
                // Value greedy's per-round choice before running exact.
                let n = round.candidates.len();
                let views: Vec<CandidateView> = (0..n).map(|i| round.view(&target, i)).collect();
                let alive = vec![true; n];
                let mut conf: Vec<(usize, usize)> = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        if conflicts(&dfg, &round, i, j) {
                            conf.push((i, j));
                        }
                    }
                }
                let probe = greedy_loop(
                    &dfg,
                    &target,
                    &round,
                    &groups,
                    &mut NoHooks,
                    BenefitKind::Cycles,
                    &views,
                    alive,
                    &conf,
                );
                let model =
                    BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| {
                        target.max_wl()
                    });
                let greedy_v = set_value(&model, &round, &groups, &probe.chosen);
                let selected = run_selection_stats(
                    &dfg,
                    &target,
                    &round,
                    &groups,
                    &mut NoHooks,
                    BenefitKind::optimal(),
                    &mut stats,
                );
                let chosen_idx: Vec<usize> = selected
                    .iter()
                    .map(|g| {
                        (0..round.candidates.len())
                            .find(|&i| round.merged(i).elems == g.elems)
                            .unwrap()
                    })
                    .collect();
                let exact_v = set_value(&model, &round, &groups, &chosen_idx);
                assert!(
                    exact_v + 1e-9 >= greedy_v,
                    "{}: exact {exact_v} below greedy incumbent {greedy_v}",
                    target.name
                );
                if selected.is_empty() {
                    break;
                }
                crate::select::absorb_selected(&mut groups, selected);
            }
            assert_eq!(stats.budget_fallbacks, 0, "{}", target.name);
        }
    }
}
