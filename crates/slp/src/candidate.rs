//! Candidate extraction rounds.
//!
//! A [`Round`] takes the current set of *items* — groups selected in
//! earlier rounds plus still-ungrouped scalar operations — and enumerates
//! merge candidates: pairs of equal-size, isomorphic, fully independent
//! items whose doubled lane count the target supports (equation (1) of the
//! paper restricted to the target's SIMD configurations).

use crate::group::{
    effective_users, fully_independent, mem_status, resolved_operands, MemStatus, SimdGroup,
};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_targets::TargetModel;
use std::collections::HashMap;

/// One merge candidate: items `left` and `right` (indices into
/// [`Round::items`]) concatenated in that lane order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the left (low-lane) item.
    pub left: usize,
    /// Index of the right (high-lane) item.
    pub right: usize,
}

/// A realised view of a candidate, handed to selection hooks.
#[derive(Debug, Clone)]
pub struct CandidateView {
    /// The merged group (left lanes then right lanes).
    pub group: SimdGroup,
    /// Lane count of the merged group.
    pub lanes: u32,
    /// Element word length the target grants this group (equation (1)).
    pub elem_wl: i32,
}

/// One extraction round over the current items.
#[derive(Debug)]
pub struct Round {
    /// Current items: prior groups and ungrouped scalar singletons.
    pub items: Vec<SimdGroup>,
    /// Merge candidates over `items`.
    pub candidates: Vec<Candidate>,
    /// Lookup from `(left, right)` to candidate index.
    by_pair: HashMap<(usize, usize), usize>,
    /// Lookup from lane vectors to item index.
    by_elems: HashMap<Vec<NodeId>, usize>,
    /// Merged group per candidate, materialized once (selection assesses
    /// every candidate every iteration — re-concatenating lanes there
    /// dominated the benefit model's allocation profile).
    merged: Vec<SimdGroup>,
    /// `resolved_operands` per node (indexed by `NodeId::index`): the
    /// per-position producers with `VarUse` wiring flattened away.
    resolved_ops: Vec<Vec<NodeId>>,
    /// Whether each node's value has any effective user (indexed by
    /// `NodeId::index`).
    has_users: Vec<bool>,
    /// Inverted consumption index: an operand superword (the per-lane
    /// producers a candidate would consume at one operand position, in
    /// lane order) maps to the ascending candidate indices consuming it.
    /// Turns the benefit model's result-flow question ("which live
    /// candidate consumes this group's lanes in order?") from a scan over
    /// all candidates into one lookup.
    consumers: HashMap<Vec<NodeId>, Vec<usize>>,
}

impl Round {
    /// Builds a round from prior groups: ungrouped groupable nodes join as
    /// singletons, then all valid merge candidates are enumerated.
    pub fn new(dfg: &Dfg, target: &TargetModel, prior: &[SimdGroup]) -> Self {
        let mut items: Vec<SimdGroup> = prior.to_vec();
        for n in dfg.groupable_nodes() {
            if !prior.iter().any(|g| g.contains(n)) {
                items.push(SimdGroup::singleton(n));
            }
        }
        let candidates = enumerate(dfg, target, &items);
        let by_pair = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.left, c.right), i))
            .collect();
        let by_elems = items
            .iter()
            .enumerate()
            .map(|(i, g)| (g.elems.clone(), i))
            .collect();
        let merged: Vec<SimdGroup> = candidates
            .iter()
            .map(|c| items[c.left].concat(&items[c.right]))
            .collect();
        let mut resolved_ops = vec![Vec::new(); dfg.len()];
        let mut has_users = vec![false; dfg.len()];
        for (id, _) in dfg.iter() {
            resolved_ops[id.index()] = resolved_operands(dfg, id);
            has_users[id.index()] = !effective_users(dfg, id).is_empty();
        }
        let mut consumers: HashMap<Vec<NodeId>, Vec<usize>> = HashMap::new();
        for (ci, m) in merged.iter().enumerate() {
            // A superword exists per operand position up to the smallest
            // lane arity; candidates consuming the same superword at two
            // positions are recorded once (lists stay ascending).
            let arity = m
                .elems
                .iter()
                .map(|&u| resolved_ops[u.index()].len())
                .min()
                .unwrap_or(0);
            #[allow(clippy::needless_range_loop)] // `pos` indexes per-lane op lists, not one slice
            for pos in 0..arity {
                let sw: Vec<NodeId> = m
                    .elems
                    .iter()
                    .map(|&u| resolved_ops[u.index()][pos])
                    .collect();
                let list = consumers.entry(sw).or_default();
                if list.last() != Some(&ci) {
                    list.push(ci);
                }
            }
        }
        Round {
            items,
            candidates,
            by_pair,
            by_elems,
            merged,
            resolved_ops,
            has_users,
            consumers,
        }
    }

    /// Materialises the merged view of a candidate.
    pub fn view(&self, target: &TargetModel, idx: usize) -> CandidateView {
        let group = self.merged[idx].clone();
        let lanes = group.lanes();
        let elem_wl = target
            .simd_element_wl(lanes)
            .expect("enumerate() only keeps supported lane counts");
        CandidateView {
            group,
            lanes,
            elem_wl,
        }
    }

    /// Candidate index for an ordered item pair.
    pub fn candidate_of(&self, left: usize, right: usize) -> Option<usize> {
        self.by_pair.get(&(left, right)).copied()
    }

    /// Item index whose lanes are exactly `elems`.
    pub fn item_of(&self, elems: &[NodeId]) -> Option<usize> {
        self.by_elems.get(elems).copied()
    }

    /// The merged group of candidate `idx` (left lanes then right lanes),
    /// materialized once at round construction.
    pub fn merged(&self, idx: usize) -> &SimdGroup {
        &self.merged[idx]
    }

    /// Precomputed `resolved_operands` of a node.
    pub(crate) fn resolved_ops(&self, n: NodeId) -> &[NodeId] {
        &self.resolved_ops[n.index()]
    }

    /// Whether a node's value has any effective user.
    pub(crate) fn node_has_users(&self, n: NodeId) -> bool {
        self.has_users[n.index()]
    }

    /// Candidate indices (ascending) whose merged group consumes the
    /// operand superword `sw` — i.e. lane `i` of the candidate uses
    /// `sw[i]` at one common operand position. Empty when nobody does.
    pub(crate) fn consumers_of(&self, sw: &[NodeId]) -> &[usize] {
        self.consumers.get(sw).map_or(&[], Vec::as_slice)
    }
}

/// Enumerates merge candidates among the items.
fn enumerate(dfg: &Dfg, target: &TargetModel, items: &[SimdGroup]) -> Vec<Candidate> {
    let sizes = target.group_sizes();
    let mut out = Vec::new();
    for i in 0..items.len() {
        for j in 0..items.len() {
            if i == j {
                continue;
            }
            let (a, b) = (&items[i], &items[j]);
            if a.lanes() != b.lanes() {
                continue;
            }
            let lanes = a.lanes() + b.lanes();
            if !sizes.contains(&lanes) || target.simd_element_wl(lanes).is_none() {
                continue;
            }
            if !a.kind(dfg).isomorphic(b.kind(dfg)) {
                continue;
            }
            // Canonical lane order: memory groups ordered by address
            // (ascending offsets only — keep (i,j) iff it is the
            // contiguous-friendly order or both orders are gathers and
            // i < j); non-memory groups by node id of the first lane.
            if !canonical_order(dfg, a, b, i, j) {
                continue;
            }
            if !fully_independent(dfg, a, b) {
                continue;
            }
            out.push(Candidate { left: i, right: j });
        }
    }
    out
}

/// Decides whether `(a, b)` is the canonical lane order for this pair.
fn canonical_order(dfg: &Dfg, a: &SimdGroup, b: &SimdGroup, i: usize, j: usize) -> bool {
    let is_mem = matches!(
        a.kind(dfg),
        NodeKind::LoadArray(..) | NodeKind::LoadParam(..) | NodeKind::StoreArray(..)
    );
    if is_mem {
        let fwd = mem_status(dfg, &a.concat(b));
        let bwd = mem_status(dfg, &b.concat(a));
        match (contiguous(fwd), contiguous(bwd)) {
            (true, false) => true,
            (false, true) => false,
            // Both gathers (or both contiguous, impossible for distinct
            // offsets): fall back to index order.
            _ => i < j,
        }
    } else {
        i < j
    }
}

fn contiguous(s: MemStatus) -> bool {
    matches!(
        s,
        MemStatus::ContiguousAligned | MemStatus::ContiguousUnaligned
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::{vex, xentium};

    fn conv_like() -> Dfg {
        // 4 independent multiplies with an adder tree (fully groupable).
        let src = r#"
kernel c {
    input x range [-1, 1];
    output y;
    param k[4] = { 0.4, 0.3, 0.2, 0.1 };
    array w[4];
    var t0;
    var t1;
    shiftin w <- x;
    t0 = k[0] * w[0] + k[1] * w[1];
    t1 = k[2] * w[2] + k[3] * w[3];
    y = t0 + t1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_stmts(&k, &blocks[0].stmts)
    }

    #[test]
    fn round_one_finds_pairs() {
        let dfg = conv_like();
        let round = Round::new(&dfg, &xentium(), &[]);
        // Items: all groupable nodes as singletons.
        assert!(round.items.iter().all(|g| g.lanes() == 1));
        // Candidates must include mul pairs, param-load pairs, array-load
        // pairs and the (t0+t1-independent) add pairs.
        assert!(!round.candidates.is_empty());
        for idx in 0..round.candidates.len() {
            let v = round.view(&xentium(), idx);
            assert_eq!(v.lanes, 2);
            assert_eq!(v.elem_wl, 16);
        }
    }

    #[test]
    fn mem_pairs_prefer_address_order() {
        let dfg = conv_like();
        let round = Round::new(&dfg, &xentium(), &[]);
        // Every load-pair candidate that is contiguous must be in
        // ascending address order.
        for c in &round.candidates {
            let g = round.items[c.left].concat(&round.items[c.right]);
            if matches!(g.kind(&dfg), NodeKind::LoadArray(..)) {
                let st = mem_status(&dfg, &g);
                if contiguous(st) {
                    // ascending: distance +1 verified by mem_status
                    assert_ne!(st, MemStatus::Gather);
                }
            }
        }
    }

    #[test]
    fn extension_round_pairs_groups_on_vex_only() {
        let dfg = conv_like();
        let r1 = Round::new(&dfg, &vex(4), &[]);
        // Pick two disjoint mul pairs manually.
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(slpwlo_ir::BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let g1 = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        let g2 = SimdGroup {
            elems: vec![muls[2], muls[3]],
        };
        let r2 = Round::new(&dfg, &vex(4), &[g1.clone(), g2.clone()]);
        // On VEX a 4x8 merge of the two pairs must be a candidate.
        let i1 = r2.item_of(&g1.elems).unwrap();
        let i2 = r2.item_of(&g2.elems).unwrap();
        assert!(
            r2.candidate_of(i1, i2).is_some() || r2.candidate_of(i2, i1).is_some(),
            "VEX must offer the 4-lane extension"
        );
        // On XENTIUM (2x16 only) no group-pair candidate may appear.
        let r2x = Round::new(&dfg, &xentium(), &[g1, g2]);
        for c in &r2x.candidates {
            assert_eq!(
                r2x.items[c.left].lanes(),
                1,
                "no 4-lane candidates on XENTIUM"
            );
        }
        let _ = r1;
    }

    #[test]
    fn grouped_nodes_leave_the_singleton_pool() {
        let dfg = conv_like();
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(slpwlo_ir::BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let g = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        let round = Round::new(&dfg, &xentium(), &[g]);
        let singleton_muls = round
            .items
            .iter()
            .filter(|it| it.lanes() == 1 && it.contains(muls[0]))
            .count();
        assert_eq!(
            singleton_muls, 0,
            "grouped node must not reappear as a singleton"
        );
    }
}
