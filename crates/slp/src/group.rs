//! SIMD groups and group-level graph utilities.

use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use std::fmt;

/// An ordered set of DFG nodes packed into one SIMD register.
///
/// The element order *is* the lane order; it matters for memory
/// contiguity and superword reuse.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimdGroup {
    /// Lane elements, lane 0 first.
    pub elems: Vec<NodeId>,
}

impl SimdGroup {
    /// A single-element (scalar) group — the starting item of round one.
    pub fn singleton(n: NodeId) -> Self {
        SimdGroup { elems: vec![n] }
    }

    /// Concatenates two groups (lanes of `self` then lanes of `other`).
    pub fn concat(&self, other: &SimdGroup) -> SimdGroup {
        let mut elems = self.elems.clone();
        elems.extend_from_slice(&other.elems);
        SimdGroup { elems }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> u32 {
        self.elems.len() as u32
    }

    /// Returns `true` if the group contains `n`.
    pub fn contains(&self, n: NodeId) -> bool {
        self.elems.contains(&n)
    }

    /// Returns `true` if the groups share an element.
    pub fn overlaps(&self, other: &SimdGroup) -> bool {
        self.elems.iter().any(|e| other.contains(*e))
    }

    /// The operation kind shared by all lanes.
    ///
    /// # Panics
    ///
    /// Panics on an empty group.
    pub fn kind<'d>(&self, dfg: &'d Dfg) -> &'d NodeKind {
        &dfg.node(self.elems[0]).kind
    }
}

impl fmt::Display for SimdGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// Follows `VarUse` wiring back to the producing node.
///
/// Variable reads are transparent for SLP: the superword chain
/// `mul -> (assign/read) -> add` is a direct def-use chain in hardware.
pub fn resolve_producer(dfg: &Dfg, n: NodeId) -> NodeId {
    let mut cur = n;
    loop {
        match &dfg.node(cur).kind {
            NodeKind::VarUse(_) => match dfg.node(cur).operands.first() {
                Some(&def) => cur = def,
                None => return cur,
            },
            _ => return cur,
        }
    }
}

/// Users of `n`'s value with `VarUse` wiring flattened away.
pub fn effective_users(dfg: &Dfg, n: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = dfg.node(n).users.clone();
    while let Some(u) = stack.pop() {
        match &dfg.node(u).kind {
            NodeKind::VarUse(_) => stack.extend(dfg.node(u).users.iter().copied()),
            _ => out.push(u),
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Operand nodes of `n` at each position, resolved through `VarUse`.
pub fn resolved_operands(dfg: &Dfg, n: NodeId) -> Vec<NodeId> {
    dfg.node(n)
        .operands
        .iter()
        .map(|&o| resolve_producer(dfg, o))
        .collect()
}

/// Returns `true` when every element of `a` is independent of every
/// element of `b` — the requirement for merging them into one SIMD
/// instruction.
pub fn fully_independent(dfg: &Dfg, a: &SimdGroup, b: &SimdGroup) -> bool {
    a.elems
        .iter()
        .all(|&x| b.elems.iter().all(|&y| dfg.independent(x, y)))
}

/// Returns `true` if some element of `from` reaches some element of `to`.
pub fn group_reaches(dfg: &Dfg, from: &SimdGroup, to: &SimdGroup) -> bool {
    from.elems
        .iter()
        .any(|&x| to.elems.iter().any(|&y| dfg.reaches(x, y)))
}

/// Would realising `g` alongside `selected` create a dependency cycle
/// in the coarsened graph (each group one super-node)?
///
/// Pairwise conflict detection cannot catch this: three or more groups
/// can form a cycle (`g → S1 → S2 → g`) with every *pair* acyclic, and
/// a candidate may also close a cycle with groups selected in earlier
/// rounds, which the per-round conflict pass never re-examines. Called
/// at selection time; an accepted selection therefore keeps the
/// coarsened graph acyclic by induction, which is exactly the invariant
/// lowering's coarsened topological sort relies on.
///
/// Selected groups overlapping `g` are skipped: they are the narrower
/// groups a wider extension candidate absorbs and supersedes.
pub fn closes_cycle(dfg: &Dfg, selected: &[SimdGroup], g: &SimdGroup) -> bool {
    use std::collections::{HashMap, HashSet};
    // Unit 0 is `g`; each non-overlapping selected group gets its own
    // unit; every other node is its own unit.
    let mut unit: HashMap<NodeId, usize> = HashMap::new();
    for &e in &g.elems {
        unit.insert(e, 0);
    }
    let mut next = 1usize;
    for s in selected {
        if s.overlaps(g) {
            continue;
        }
        for &e in &s.elems {
            unit.insert(e, next);
        }
        next += 1;
    }
    let base = next;
    let unit_of = |n: NodeId| unit.get(&n).copied().unwrap_or(base + n.index());
    let mut succs: HashMap<usize, Vec<usize>> = HashMap::new();
    for (id, _) in dfg.iter() {
        let u = unit_of(id);
        for p in dfg.preds(id) {
            let pu = unit_of(p);
            if pu != u {
                succs.entry(pu).or_default().push(u);
            }
        }
    }
    // DFS over coarsened successors starting from `g`'s unit: a path
    // back to unit 0 is a cycle through the new group.
    let mut stack: Vec<usize> = succs.get(&0).cloned().unwrap_or_default();
    let mut seen: HashSet<usize> = HashSet::new();
    while let Some(u) = stack.pop() {
        if u == 0 {
            return true;
        }
        if !seen.insert(u) {
            continue;
        }
        if let Some(next) = succs.get(&u) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Memory layout of a group of loads or stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemStatus {
    /// Contiguous and aligned to the vector width: one SIMD access.
    ContiguousAligned,
    /// Contiguous but misaligned: realizable with extra access/align ops.
    ContiguousUnaligned,
    /// Not contiguous: needs scalar accesses plus packing (gather).
    Gather,
    /// Not a memory group.
    NotMemory,
}

/// Classifies the memory layout of a group's accesses.
///
/// Elements must be loads from the same array/param (callers guarantee
/// this via isomorphism); contiguity requires identical affine terms and
/// consecutive offsets in lane order; alignment requires the first offset
/// to be a multiple of the lane count.
pub fn mem_status(dfg: &Dfg, g: &SimdGroup) -> MemStatus {
    let ixs: Vec<_> = g
        .elems
        .iter()
        .map(|&e| match &dfg.node(e).kind {
            NodeKind::LoadArray(_, ix)
            | NodeKind::StoreArray(_, ix)
            | NodeKind::LoadParam(_, ix) => Some(ix.clone()),
            _ => None,
        })
        .collect();
    if ixs.iter().any(|i| i.is_none()) {
        return MemStatus::NotMemory;
    }
    let ixs: Vec<_> = ixs.into_iter().map(|i| i.expect("checked above")).collect();
    for w in ixs.windows(2) {
        if w[0].constant_distance(&w[1]) != Some(1) {
            return MemStatus::Gather;
        }
    }
    if ixs[0].offset().rem_euclid(g.lanes() as i64) == 0 {
        MemStatus::ContiguousAligned
    } else {
        MemStatus::ContiguousUnaligned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::Kernel;

    fn fir_block() -> (Kernel, Dfg) {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    acc = acc + c[0] * dl[0];
    acc = acc + c[1] * dl[1];
    acc = acc + c[2] * dl[2];
    acc = acc + c[3] * dl[3];
    y = acc;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 1);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        (k, dfg)
    }

    fn nodes_of(dfg: &Dfg, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        dfg.iter()
            .filter(|(_, n)| pred(&n.kind))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn muls_are_fully_independent() {
        let (_, dfg) = fir_block();
        let muls = nodes_of(&dfg, |k| matches!(k, NodeKind::Bin(slpwlo_ir::BinOp::Mul)));
        assert_eq!(muls.len(), 4);
        let g1 = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        let g2 = SimdGroup {
            elems: vec![muls[2], muls[3]],
        };
        assert!(fully_independent(&dfg, &g1, &g2));
    }

    #[test]
    fn accumulator_adds_are_dependent() {
        let (_, dfg) = fir_block();
        let adds = nodes_of(&dfg, |k| matches!(k, NodeKind::Bin(slpwlo_ir::BinOp::Add)));
        assert_eq!(adds.len(), 4);
        let g1 = SimdGroup::singleton(adds[0]);
        let g2 = SimdGroup::singleton(adds[1]);
        assert!(!fully_independent(&dfg, &g1, &g2));
        assert!(group_reaches(&dfg, &g1, &g2));
    }

    #[test]
    fn resolve_through_var_use() {
        let (_, dfg) = fir_block();
        let adds = nodes_of(&dfg, |k| matches!(k, NodeKind::Bin(slpwlo_ir::BinOp::Add)));
        // Second add's first operand is a VarUse of acc; its producer is
        // the first add.
        let ops = resolved_operands(&dfg, adds[1]);
        assert!(ops.contains(&adds[0]));
    }

    #[test]
    fn effective_users_skip_var_use() {
        let (_, dfg) = fir_block();
        let adds = nodes_of(&dfg, |k| matches!(k, NodeKind::Bin(slpwlo_ir::BinOp::Add)));
        let users = effective_users(&dfg, adds[0]);
        assert_eq!(users, vec![adds[1]]);
    }

    #[test]
    fn mem_status_classifies() {
        let (_, dfg) = fir_block();
        let loads = nodes_of(&dfg, |k| matches!(k, NodeKind::LoadArray(..)));
        assert_eq!(loads.len(), 4);
        // dl[0], dl[1]: contiguous, offset 0 => aligned.
        let a = SimdGroup {
            elems: vec![loads[0], loads[1]],
        };
        assert_eq!(mem_status(&dfg, &a), MemStatus::ContiguousAligned);
        // dl[1], dl[2]: contiguous but offset 1 => unaligned.
        let b = SimdGroup {
            elems: vec![loads[1], loads[2]],
        };
        assert_eq!(mem_status(&dfg, &b), MemStatus::ContiguousUnaligned);
        // dl[0], dl[2]: gap => gather.
        let c = SimdGroup {
            elems: vec![loads[0], loads[2]],
        };
        assert_eq!(mem_status(&dfg, &c), MemStatus::Gather);
        // reversed order: distance -1 => gather (no reversing loads).
        let d = SimdGroup {
            elems: vec![loads[1], loads[0]],
        };
        assert_eq!(mem_status(&dfg, &d), MemStatus::Gather);
        // a mul is not a memory group
        let muls = nodes_of(&dfg, |k| matches!(k, NodeKind::Bin(slpwlo_ir::BinOp::Mul)));
        let e = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        assert_eq!(mem_status(&dfg, &e), MemStatus::NotMemory);
    }

    #[test]
    fn concat_and_overlap() {
        let (_, dfg) = fir_block();
        let muls = nodes_of(&dfg, |k| matches!(k, NodeKind::Bin(slpwlo_ir::BinOp::Mul)));
        let g1 = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        let g2 = SimdGroup {
            elems: vec![muls[2], muls[3]],
        };
        let g4 = g1.concat(&g2);
        assert_eq!(g4.lanes(), 4);
        assert!(g4.overlaps(&g1) && g4.overlaps(&g2));
        assert!(!g1.overlaps(&g2));
        assert_eq!(
            g4.to_string(),
            format!("{{{},{},{},{}}}", muls[0], muls[1], muls[2], muls[3])
        );
    }
}
