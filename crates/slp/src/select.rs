//! The iterative group-selection loop (fig. 1c lines 26–35 of the paper)
//! and the round driver.
//!
//! The loop is parameterised by [`SelectHooks`] so that `slpwlo-core` can
//! inject the paper's accuracy-awareness:
//!
//! * [`SelectHooks::validate`] — "eliminate candidates violating the
//!   constraint" (fig. 1c lines 6–12);
//! * [`SelectHooks::accuracy_conflict`] — the additional conflicts of
//!   lines 16–22 (two candidates that cannot *coexist* within the noise
//!   budget);
//! * [`SelectHooks::on_select`] — `SETMAXWL` on the chosen group, with the
//!   option to veto a selection whose cumulative effect would break the
//!   constraint (a strict guard the paper implies through its conflict
//!   definition).

use crate::benefit::{BenefitKind, BenefitModel, CostedBenefit};
use crate::candidate::{CandidateView, Round};
use crate::conflict::conflicts;
use crate::group::{closes_cycle, SimdGroup};
use crate::optimal::{run_selection_optimal, SelectStats};
use slpwlo_ir::dfg::{Dfg, NodeId};
use slpwlo_targets::{CycleCache, SchedKind, TargetModel};

/// Hooks through which accuracy awareness (or any other policy) is
/// injected into the selection loop.
///
/// Each callback is one self-contained speculative probe: implementations
/// that mutate shared state (the fixed-point spec, an incremental
/// accuracy evaluator's caches) must leave it resolved — committed or
/// rolled back — before returning, because the loop interleaves
/// `validate`, `accuracy_conflict` and `on_select` calls in benefit order
/// with no cleanup pass of its own. `slpwlo-core`'s `AccuracyHooks`
/// realises each probe as one `SETMAXWL` trial against the evaluator's
/// incremental trial/commit/rollback protocol.
pub trait SelectHooks {
    /// Candidate admission check, called once per candidate before
    /// conflict analysis. Return `false` to discard the candidate.
    fn validate(&mut self, view: &CandidateView) -> bool {
        let _ = view;
        true
    }

    /// Extra (non-structural) conflict between two candidates. Called
    /// only for structurally compatible pairs.
    fn accuracy_conflict(&mut self, a: &CandidateView, b: &CandidateView) -> bool {
        let _ = (a, b);
        false
    }

    /// Called when the loop wants to select a candidate. Apply side
    /// effects (word-length updates) here; return `false` to veto.
    fn on_select(&mut self, view: &CandidateView) -> bool {
        let _ = view;
        true
    }

    /// The *current* word length of a node's value, for cycle-priced
    /// benefit estimation ([`BenefitKind::Cycles`]). Accuracy-aware hooks
    /// answer from the evolving fixed-point spec, so live candidates are
    /// re-priced as word lengths shrink; `None` (the default) prices at
    /// the target's maximum word length.
    fn current_wl(&self, node: NodeId) -> Option<i32> {
        let _ = node;
        None
    }

    /// The *current* fractional word length of a node's value. Lets the
    /// cycle-priced model compute per-lane scaling amounts and price a
    /// candidate's scalings exactly: nothing when amounts are zero, one
    /// vector shift when uniform, the full fig. 2 unpack/shift/repack
    /// when mismatched. `None` (the default) assumes uniform scaling.
    fn current_fwl(&self, node: NodeId) -> Option<i32> {
        let _ = node;
        None
    }

    /// Whether a scaling-equalization pass (fig. 1b) runs after this
    /// extraction. The cycle-priced model then treats equalizable
    /// mismatched scalings as uniform — the accuracy-aware WLO↔SLP flow
    /// answers `true`, the equalization-free `WLO-First` baseline keeps
    /// the default `false`.
    fn equalization_follows(&self) -> bool {
        false
    }

    /// Which scheduler the flow prices (and will run) blocks under.
    /// Under [`SchedKind::Modulo`] the cycle-priced model drops its
    /// latency-boundedness admission hedge: overlapped iterations hide
    /// pack/extract chain hops, so slot pressure is the honest price.
    /// The default is the sequential-issue list scheduler.
    fn sched_kind(&self) -> SchedKind {
        SchedKind::List
    }

    /// Snapshot the hook's mutable state (the spec under accuracy-aware
    /// selection). The exact selector ([`BenefitKind::Optimal`]) probes a
    /// whole greedy round speculatively — `checkpoint`, run greedy
    /// through `on_select` commits, [`restore`](Self::restore) — before
    /// replaying the winning set's side effects in chosen order. Hooks
    /// whose `on_select` mutates state **must** implement both to be
    /// sound under `Optimal`; the default no-ops are correct for
    /// stateless hooks.
    fn checkpoint(&mut self) {}

    /// Roll the hook's mutable state back to the last
    /// [`checkpoint`](Self::checkpoint). See there.
    fn restore(&mut self) {}
}

/// Policy-free hooks: plain structural SLP.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl SelectHooks for NoHooks {}

/// Runs one selection pass over a round (one `SLP()` invocation of the
/// paper) with the default benefit strategy; see [`run_selection_with`].
pub fn run_selection(
    dfg: &Dfg,
    target: &TargetModel,
    round: &Round,
    selected_so_far: &[SimdGroup],
    hooks: &mut dyn SelectHooks,
) -> Vec<SimdGroup> {
    run_selection_with(
        dfg,
        target,
        round,
        selected_so_far,
        hooks,
        BenefitKind::default(),
    )
}

/// Runs one selection pass over a round (one `SLP()` invocation of the
/// paper) and returns the newly formed groups.
///
/// `benefit` picks the candidate-pricing strategy; under
/// [`BenefitKind::Cycles`] the model reads each node's current word
/// length through [`SelectHooks::current_wl`] every iteration, so
/// candidates are re-priced as selections shrink the spec. Under
/// [`BenefitKind::Optimal`] the round is solved exactly by
/// branch-and-bound; use [`run_selection_stats`] to observe its search
/// statistics.
pub fn run_selection_with(
    dfg: &Dfg,
    target: &TargetModel,
    round: &Round,
    selected_so_far: &[SimdGroup],
    hooks: &mut dyn SelectHooks,
    benefit: BenefitKind,
) -> Vec<SimdGroup> {
    let mut stats = SelectStats::default();
    run_selection_stats(
        dfg,
        target,
        round,
        selected_so_far,
        hooks,
        benefit,
        &mut stats,
    )
}

/// [`run_selection_with`], accumulating the exact selector's search
/// statistics into `stats` (untouched under the greedy kinds).
pub fn run_selection_stats(
    dfg: &Dfg,
    target: &TargetModel,
    round: &Round,
    selected_so_far: &[SimdGroup],
    hooks: &mut dyn SelectHooks,
    benefit: BenefitKind,
    stats: &mut SelectStats,
) -> Vec<SimdGroup> {
    let n = round.candidates.len();
    let views: Vec<CandidateView> = (0..n).map(|i| round.view(target, i)).collect();

    // Candidate validation (fig. 1c lines 4-12).
    let alive: Vec<bool> = views.iter().map(|v| hooks.validate(v)).collect();

    // Conflict detection (fig. 1c lines 13-25).
    let mut conf: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        for j in (i + 1)..n {
            if !alive[j] {
                continue;
            }
            if conflicts(dfg, round, i, j) || hooks.accuracy_conflict(&views[i], &views[j]) {
                conf.push((i, j));
            }
        }
    }

    if let BenefitKind::Optimal { budget } = benefit {
        run_selection_optimal(
            dfg,
            target,
            round,
            selected_so_far,
            hooks,
            &views,
            alive,
            &conf,
            budget,
            stats,
        )
    } else {
        greedy_loop(
            dfg,
            target,
            round,
            selected_so_far,
            hooks,
            benefit,
            &views,
            alive,
            &conf,
        )
        .groups
    }
}

/// What one greedy pass produced: the new groups, plus the accepted
/// candidate indices in selection order (the exact selector replays a
/// probe from exactly this log).
pub(crate) struct GreedyOutcome {
    pub groups: Vec<SimdGroup>,
    pub chosen: Vec<usize>,
}

/// The paper's greedy-with-guards loop over pre-computed candidate
/// views, liveness and conflicts. `benefit` only picks the pricing model
/// here — [`BenefitKind::Optimal`] dispatch happens one level up.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_loop(
    dfg: &Dfg,
    target: &TargetModel,
    round: &Round,
    selected_so_far: &[SimdGroup],
    hooks: &mut dyn SelectHooks,
    benefit: BenefitKind,
    views: &[CandidateView],
    mut alive: Vec<bool>,
    conf: &[(usize, usize)],
) -> GreedyOutcome {
    let mut selected: Vec<SimdGroup> = selected_so_far.to_vec();
    let mut new_groups: Vec<SimdGroup> = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    let max_wl = target.max_wl();
    // Op prices depend only on the target, never on the evolving spec,
    // so one cache warms up across every per-iteration model rebuild.
    let prices = CycleCache::new(target);

    // Main loop: while conflicts remain among live candidates, pick the
    // most beneficial candidate and eliminate everything conflicting.
    loop {
        let live_conflicts = conf.iter().any(|&(i, j)| alive[i] && alive[j]);
        // The model is rebuilt each iteration over a fresh word-length
        // oracle: selections mutate the spec through the hooks, and the
        // cycle-priced strategy must see those shrinks.
        let best = {
            let oracle: &dyn SelectHooks = &*hooks;
            let model = BenefitModel::with_context_shared(
                dfg,
                round,
                &prices,
                benefit,
                |n| oracle.current_wl(n).unwrap_or(max_wl),
                |n| oracle.current_fwl(n),
            )
            .assume_equalization(oracle.equalization_follows())
            .assume_sched(oracle.sched_kind());
            argmax_benefit(&model, &alive, &selected)
        };
        let Some(best) = best else {
            break;
        };
        if !live_conflicts {
            // Conflict-free tail (paper: loop ends when conflicts are
            // resolved; remaining compatible candidates are selected in
            // benefit order, still subject to the selection hook).
            if try_select(
                dfg,
                best,
                views,
                &mut alive,
                &mut selected,
                &mut new_groups,
                hooks,
            ) {
                chosen.push(best);
            }
            // Killing against `new_groups` alone suffices: a candidate
            // overlapping a `selected_so_far` group necessarily contains
            // it wholly as one of its two items (prior-round nodes only
            // enter candidates through their group's item), which is a
            // legal widening that `absorb_selected` resolves — see
            // `overlap_with_prior_groups_implies_containment`.
            kill_overlapping(round, best, &mut alive, &new_groups);
            continue;
        }
        let accepted = try_select(
            dfg,
            best,
            views,
            &mut alive,
            &mut selected,
            &mut new_groups,
            hooks,
        );
        if accepted {
            chosen.push(best);
            // Eliminate candidates in conflict with the selection.
            for &(i, j) in conf {
                if i == best && alive[j] {
                    alive[j] = false;
                } else if j == best && alive[i] {
                    alive[i] = false;
                }
            }
        }
    }
    GreedyOutcome {
        groups: new_groups,
        chosen,
    }
}

fn try_select(
    dfg: &Dfg,
    idx: usize,
    views: &[CandidateView],
    alive: &mut [bool],
    selected: &mut Vec<SimdGroup>,
    new_groups: &mut Vec<SimdGroup>,
    hooks: &mut dyn SelectHooks,
) -> bool {
    alive[idx] = false;
    // Structural guard before any hook side effects: a group that would
    // close a dependency cycle with the groups already selected (this
    // round or earlier ones) can never be realised as one SIMD
    // instruction — pairwise candidate conflicts cannot see these
    // multi-group cycles.
    if closes_cycle(dfg, selected, &views[idx].group) {
        return false;
    }
    if hooks.on_select(&views[idx]) {
        selected.push(views[idx].group.clone());
        new_groups.push(views[idx].group.clone());
        true
    } else {
        false
    }
}

/// Kills candidates overlapping any already-formed group (used in the
/// conflict-free tail, where shared-item conflicts are gone but overlaps
/// with fresh selections must still be respected).
fn kill_overlapping(round: &Round, _idx: usize, alive: &mut [bool], new_groups: &[SimdGroup]) {
    for (ci, a) in alive.iter_mut().enumerate() {
        if !*a {
            continue;
        }
        let g = round.merged(ci);
        if new_groups.iter().any(|s| s.overlaps(g)) {
            *a = false;
        }
    }
}

fn argmax_benefit(
    model: &BenefitModel<'_>,
    alive: &[bool],
    selected: &[SimdGroup],
) -> Option<usize> {
    // One pass for the whole sweep: `(alive, selected)` are fixed here,
    // so the pass's viability memo is shared across every candidate.
    let pass = model.pass(alive, selected);
    pick_best(
        alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| (i, pass.assess(i))),
        model.admission_margin(),
    )
}

/// The admission + argmax kernel of the greedy loop, total over any
/// `f64` the pricing produces.
///
/// Admission: only candidates whose *net* benefit clears the margin may
/// be selected — the ranking key alone would pack pairs whose inserts
/// and extracts cost more than what the vector op saves. Re-evaluated
/// every iteration: a candidate rejected now can become admissible once
/// neighbours are selected (reuse grows) or, under WLO↔SLP, once word
/// lengths shrink. A NaN net is rejected explicitly — `net <= margin`
/// is false for NaN, so without the guard a poisoned price would pass
/// admission. Ranking uses the total order with an earliest-index
/// tie-break, so a NaN rank can never displace a finite best and equal
/// ranks resolve deterministically.
pub(crate) fn pick_best(
    scores: impl Iterator<Item = (usize, CostedBenefit)>,
    margin: f64,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, assessed) in scores {
        let net = assessed.net();
        if net.is_nan() || net <= margin {
            continue;
        }
        let b = assessed.rank();
        match best {
            Some((_, bb)) if bb.total_cmp(&b).is_ge() => {}
            _ => best = Some((i, b)),
        }
    }
    best.map(|(i, _)| i)
}

/// Runs extraction rounds to fixpoint with the default benefit strategy;
/// see [`extract_rounds_with`].
pub fn extract_rounds(
    dfg: &Dfg,
    target: &TargetModel,
    hooks: &mut dyn SelectHooks,
) -> Vec<SimdGroup> {
    extract_rounds_with(dfg, target, hooks, BenefitKind::default())
}

/// Runs extraction rounds to fixpoint (the paper's outer `while not done`
/// over one basic block): each round re-enumerates candidates over the
/// updated item set, allowing group sizes to grow as long as the target
/// supports them.
pub fn extract_rounds_with(
    dfg: &Dfg,
    target: &TargetModel,
    hooks: &mut dyn SelectHooks,
    benefit: BenefitKind,
) -> Vec<SimdGroup> {
    let mut stats = SelectStats::default();
    extract_rounds_stats(dfg, target, hooks, benefit, &mut stats)
}

/// [`extract_rounds_with`], accumulating the exact selector's search
/// statistics into `stats` (untouched under the greedy kinds).
pub fn extract_rounds_stats(
    dfg: &Dfg,
    target: &TargetModel,
    hooks: &mut dyn SelectHooks,
    benefit: BenefitKind,
    stats: &mut SelectStats,
) -> Vec<SimdGroup> {
    let mut groups: Vec<SimdGroup> = Vec::new();
    loop {
        let round = Round::new(dfg, target, &groups);
        let selected = run_selection_stats(dfg, target, &round, &groups, hooks, benefit, stats);
        if selected.is_empty() {
            return groups;
        }
        absorb_selected(&mut groups, selected);
    }
}

/// Folds a round's freshly selected groups into the accumulated group
/// set: a selection supersedes every prior group it overlaps (fig. 1a
/// line 12 — the wider extension absorbs the groups it grew from).
///
/// The retain triggers on *any* overlap, not only strictly-wider ones.
/// `Round` provably cannot emit an overlapping selection that is not a
/// strict widening — a candidate overlapping a prior group contains it
/// wholly as one of its two equal-lane items, hence has twice its lanes
/// (pinned by `overlap_with_prior_groups_implies_containment`) — but
/// keeping the supersede rule independent of that enumeration invariant
/// means a future relaxation of `Round` cannot silently leave one node
/// in two groups.
pub fn absorb_selected(groups: &mut Vec<SimdGroup>, selected: Vec<SimdGroup>) {
    groups.retain(|g| !selected.iter().any(|s| s.overlaps(g)));
    groups.extend(selected);
}

/// Plain, accuracy-*unaware* SLP extraction with the default benefit
/// strategy; see [`extract_plain_with`].
pub fn extract_plain(
    dfg: &Dfg,
    target: &TargetModel,
    wl_of: &dyn Fn(NodeId) -> i32,
) -> Vec<SimdGroup> {
    extract_plain_with(dfg, target, wl_of, BenefitKind::default())
}

/// Plain, accuracy-*unaware* SLP extraction for the `WLO-First` baseline:
/// word lengths are already fixed, so a candidate is admissible iff every
/// element's word length fits the sub-word the target grants the group.
/// The frozen word lengths also feed the cycle-priced benefit model.
pub fn extract_plain_with(
    dfg: &Dfg,
    target: &TargetModel,
    wl_of: &dyn Fn(NodeId) -> i32,
    benefit: BenefitKind,
) -> Vec<SimdGroup> {
    struct FixedWlHooks<'a> {
        target: &'a TargetModel,
        wl_of: &'a dyn Fn(NodeId) -> i32,
    }
    impl SelectHooks for FixedWlHooks<'_> {
        fn validate(&mut self, view: &CandidateView) -> bool {
            view.group
                .elems
                .iter()
                .all(|&e| match self.target.container_wl((self.wl_of)(e)) {
                    Some(c) => c <= view.elem_wl,
                    None => false,
                })
        }

        fn current_wl(&self, node: NodeId) -> Option<i32> {
            Some((self.wl_of)(node))
        }
    }
    let mut hooks = FixedWlHooks { target, wl_of };
    extract_rounds_with(dfg, target, &mut hooks, benefit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::dfg::NodeKind;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::Kernel;
    use slpwlo_targets::{st240, vex, xentium};

    fn fir4_block() -> (Kernel, Dfg) {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_stmts(&k, &blocks[0].stmts);
        (k, dfg)
    }

    #[test]
    fn plain_extraction_finds_groups_at_16_bits() {
        let (_, dfg) = fir4_block();
        let groups = extract_plain(&dfg, &xentium(), &|_| 16);
        assert!(!groups.is_empty(), "16-bit data must vectorize");
        // The two multiplies with adjacent loads must be grouped.
        let mul_groups: Vec<_> = groups
            .iter()
            .filter(|g| matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)))
            .collect();
        assert_eq!(mul_groups.len(), 2, "got {groups:?}");
        // No group may contain dependent elements.
        for g in &groups {
            for (i, &a) in g.elems.iter().enumerate() {
                for &b in &g.elems[i + 1..] {
                    assert!(dfg.independent(a, b));
                }
            }
        }
    }

    #[test]
    fn plain_extraction_finds_nothing_at_32_bits() {
        let (_, dfg) = fir4_block();
        let groups = extract_plain(&dfg, &xentium(), &|_| 32);
        assert!(
            groups.is_empty(),
            "32-bit data cannot pack on a 32-bit SIMD datapath"
        );
    }

    #[test]
    fn extension_to_four_lanes_on_vex() {
        let (_, dfg) = fir4_block();
        let groups8 = extract_plain(&dfg, &vex(4), &|_| 8);
        let max_lanes = groups8.iter().map(|g| g.lanes()).max().unwrap_or(0);
        assert_eq!(
            max_lanes, 4,
            "8-bit data on VEX must form 4-lane groups: {groups8:?}"
        );
        // On ST240 (2x16 only) the same data stays in pairs.
        let groups_st = extract_plain(&dfg, &st240(), &|_| 8);
        let max_st = groups_st.iter().map(|g| g.lanes()).max().unwrap_or(0);
        assert_eq!(max_st, 2);
    }

    #[test]
    fn mixed_wl_blocks_grouping() {
        let (_, dfg) = fir4_block();
        // Give one multiply 32 bits: it cannot join a 2x16 group.
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(slpwlo_ir::BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let wide = muls[0];
        let groups = extract_plain(&dfg, &xentium(), &move |n| if n == wide { 32 } else { 16 });
        for g in &groups {
            assert!(!g.contains(wide), "the 32-bit op must stay scalar");
        }
    }

    #[test]
    fn no_group_member_repeats() {
        let (_, dfg) = fir4_block();
        let groups = extract_plain(&dfg, &vex(4), &|_| 16);
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &e in &g.elems {
                assert!(seen.insert(e), "node {e} appears in two groups");
            }
        }
    }

    #[test]
    fn poisoned_prices_never_win_the_argmax() {
        // Regression for the NaN admission hole: `net() <= margin` is
        // false when net() is NaN, so the pre-fix argmax admitted a
        // poisoned candidate — and `bb >= b` (false against NaN) then
        // let its NaN rank displace any finite best. Both must be dead.
        let nan = CostedBenefit::from_parts(f64::NAN, 0.0, 0.0, 0.0);
        let good = CostedBenefit::from_parts(5.0, 0.0, 0.0, 1.0);
        // A lone poisoned candidate is not admitted.
        assert_eq!(pick_best([(0, nan)].into_iter(), 0.0), None);
        // A poisoned candidate never displaces a finite one, on either
        // side of it.
        assert_eq!(pick_best([(0, nan), (1, good)].into_iter(), 0.0), Some(1));
        assert_eq!(pick_best([(0, good), (1, nan)].into_iter(), 0.0), Some(0));
        // Infinite prices are collapsed at the assessment boundary; via
        // `sanitized()` they reach the argmax as net() == -inf and lose
        // admission outright.
        let inf = CostedBenefit::from_parts(f64::INFINITY, 0.0, 0.0, 0.0).sanitized();
        assert_eq!(pick_best([(0, inf), (1, good)].into_iter(), 0.0), Some(1));
        // Equal ranks tie-break to the earliest index, deterministically.
        assert_eq!(pick_best([(0, good), (1, good)].into_iter(), 0.0), Some(0));
        // The margin is respected as a strict bound.
        assert_eq!(pick_best([(0, good)].into_iter(), 4.0), None);
    }

    #[test]
    fn absorb_drops_any_overlapping_prior_group() {
        let g = |elems: &[u32]| SimdGroup {
            elems: elems.iter().map(|&i| NodeId(i)).collect(),
        };
        // A wider selection absorbs the pair it contains.
        let mut groups = vec![g(&[0, 1]), g(&[2, 3])];
        absorb_selected(&mut groups, vec![g(&[0, 1, 4, 5])]);
        assert_eq!(groups, vec![g(&[2, 3]), g(&[0, 1, 4, 5])]);
        // An equal-lane overlapping selection (impossible from `Round`,
        // but the supersede rule must not rely on that) also absorbs.
        let mut groups = vec![g(&[0, 1]), g(&[2, 3])];
        absorb_selected(&mut groups, vec![g(&[1, 4])]);
        assert_eq!(groups, vec![g(&[2, 3]), g(&[1, 4])]);
        // Disjoint selections accumulate.
        let mut groups = vec![g(&[0, 1])];
        absorb_selected(&mut groups, vec![g(&[2, 3])]);
        assert_eq!(groups, vec![g(&[0, 1]), g(&[2, 3])]);
    }

    #[test]
    fn overlap_with_prior_groups_implies_containment() {
        // The structural invariant both the supersede rule and the
        // conflict-free tail lean on: a candidate overlapping a
        // prior-round group must contain it wholly as one of its two
        // items — prior-round nodes only enter the item set through
        // their group — and therefore has strictly more lanes. An
        // equal-lane partial overlap is unrepresentable.
        let (_, dfg) = fir4_block();
        for target in [xentium(), vex(4), st240()] {
            // Drive rounds to fixpoint, checking every round's candidate
            // enumeration against the prior groups it extends.
            let mut groups: Vec<SimdGroup> = Vec::new();
            loop {
                let round = Round::new(&dfg, &target, &groups);
                for idx in 0..round.candidates.len() {
                    let cand = round.merged(idx);
                    for prior in &groups {
                        if cand.overlaps(prior) {
                            assert!(
                                prior.elems.iter().all(|&e| cand.contains(e)),
                                "{}: candidate {cand} partially overlaps prior {prior}",
                                target.name
                            );
                            assert!(
                                cand.lanes() > prior.lanes(),
                                "{}: overlapping candidate {cand} is not wider than {prior}",
                                target.name
                            );
                        }
                    }
                }
                let selected = run_selection_with(
                    &dfg,
                    &target,
                    &round,
                    &groups,
                    &mut NoHooks,
                    BenefitKind::Cycles,
                );
                if selected.is_empty() {
                    break;
                }
                absorb_selected(&mut groups, selected);
            }
            // And the final fixpoint leaves every node in at most one
            // group (the verify_groups invariant the supersede protects).
            let mut seen = std::collections::HashSet::new();
            for g in &groups {
                for &e in &g.elems {
                    assert!(seen.insert(e), "{}: node {e} in two groups", target.name);
                }
            }
        }
    }

    #[test]
    fn veto_hook_blocks_selection() {
        struct VetoAll;
        impl SelectHooks for VetoAll {
            fn on_select(&mut self, _v: &CandidateView) -> bool {
                false
            }
        }
        let (_, dfg) = fir4_block();
        let groups = extract_rounds(&dfg, &xentium(), &mut VetoAll);
        assert!(groups.is_empty());
    }

    #[test]
    fn validate_hook_filters_candidates() {
        // Admit loads and muls, reject the add pair: extraction must
        // still form the (net-beneficial) load and mul groups while the
        // filtered adds never appear. (Keeping loads admissible matters:
        // a mul pair with no packed operands is net-negative on its own
        // and the benefit admission would rightly skip it.)
        struct NoAdds<'d> {
            dfg: &'d Dfg,
        }
        impl SelectHooks for NoAdds<'_> {
            fn validate(&mut self, view: &CandidateView) -> bool {
                !matches!(
                    view.group.kind(self.dfg),
                    NodeKind::Bin(slpwlo_ir::BinOp::Add)
                )
            }
        }
        let (_, dfg) = fir4_block();
        let groups = extract_rounds(&dfg, &xentium(), &mut NoAdds { dfg: &dfg });
        assert!(!groups.is_empty());
        assert!(groups
            .iter()
            .any(|g| matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul))));
        for g in &groups {
            assert!(
                !matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Add)),
                "filtered adds must never be selected"
            );
        }
    }
}
