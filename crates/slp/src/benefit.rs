//! Candidate benefit estimation.
//!
//! Two strategies estimate what selecting a candidate buys, behind
//! [`BenefitKind`]:
//!
//! * [`BenefitKind::Slots`] — the historical, target-blind model in the
//!   spirit of Liu et al. (PLDI 2012): a group of `L` lanes saves `L - 1`
//!   issue slots, every packing/unpacking event costs one abstract "pack
//!   op", and superword reuse counts in superword units.
//! * [`BenefitKind::Cycles`] (default) — the goSLP-inspired,
//!   cycle-denominated model: the candidate's vector op, its pack/unpack
//!   traffic, and the scalar ops it displaces are all priced through
//!   [`TargetModel::cycles`] (which folds over [`TargetModel::cost`], the
//!   same source the `slpwlo-core` schedulers price the lowered program
//!   with) **at the
//!   candidate's current word lengths** — so a 32-bit multiply pair on a
//!   16x16 multiplier carries its macro-expansion price, packs on a
//!   single-issue machine cost whole cycles, and shifter style matters.
//!
//! Both models fill one [`CostedBenefit`]: `saved` (what the vector op
//! saves over the displaced scalars), `reuse` (packing traffic avoided,
//! certain for selected/prior-round producers, discounted by half for
//! live candidates), and `pack` (packing traffic incurred). Selection
//! admits a candidate while `net() > 0` and ranks by `rank()`,
//! re-evaluated every iteration: a pack that is not worth its traffic now
//! can become admissible once its neighbours are selected or its word
//! lengths shrink.

use crate::candidate::Round;
use crate::group::{mem_status, MemStatus, SimdGroup};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_ir::types::BinOp;
use slpwlo_targets::{CycleCache, OpQuery, SchedKind, TargetModel};
use std::cell::RefCell;
use std::collections::HashMap;

/// Which benefit estimate drives group selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BenefitKind {
    /// Target-blind issue-slot counting (the historical model).
    Slots,
    /// Cycle prices drawn from [`TargetModel::cost`] at the candidate's
    /// current word lengths.
    #[default]
    Cycles,
    /// Exact per-round selection: a branch-and-bound search over the
    /// [`BenefitKind::Cycles`] prices for the conflict-free, acyclic
    /// candidate subset maximizing total net benefit, with reuse priced
    /// pairwise-exactly (a partner's speculative reuse becomes certain
    /// once the partner is in the chosen set). The incumbent is seeded
    /// from the greedy result, so the exact selector never returns a
    /// worse packing than greedy; when the search exceeds `budget`
    /// include-steps in one round it falls back to the greedy result
    /// deterministically (recorded in `SelectStats::budget_fallbacks`).
    Optimal {
        /// Maximum branch-and-bound include-steps per round before the
        /// deterministic greedy fallback.
        budget: u32,
    },
}

impl BenefitKind {
    /// Default per-round trial budget of [`BenefitKind::Optimal`] —
    /// enough to search any round the suite produces exhaustively
    /// (CFIR's fully-unrolled first round, the suite's largest at 244
    /// pooled candidates, completes in ~106k include-steps), small
    /// enough to bound a degenerate round.
    pub const DEFAULT_BUDGET: u32 = 262_144;

    /// [`BenefitKind::Optimal`] with the default budget.
    pub fn optimal() -> Self {
        BenefitKind::Optimal {
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Stable machine-readable name (`"slots"` / `"cycles"` /
    /// `"optimal"`).
    pub fn name(self) -> &'static str {
        match self {
            BenefitKind::Slots => "slots",
            BenefitKind::Cycles => "cycles",
            BenefitKind::Optimal { .. } => "optimal",
        }
    }

    /// The pricing model assessments run under: [`BenefitKind::Optimal`]
    /// searches over [`BenefitKind::Cycles`] prices, the other kinds
    /// price as themselves.
    pub fn pricing(self) -> BenefitKind {
        match self {
            BenefitKind::Optimal { .. } => BenefitKind::Cycles,
            k => k,
        }
    }
}

impl std::fmt::Display for BenefitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The priced outcome of one candidate assessment.
///
/// Units are issue slots under [`BenefitKind::Slots`] and cycles under
/// [`BenefitKind::Cycles`]; the combination formulas are shared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostedBenefit {
    /// Intrinsic saving of the vector op over the scalars it displaces.
    pub saved: f64,
    /// Packing traffic avoided with certainty (operand superwords already
    /// produced packed, results consumed packed by selected groups).
    pub reuse: f64,
    /// Half-weighted traffic avoided *if* live partner candidates are
    /// also selected — optimism that bootstraps chains, never charged as
    /// a cost.
    pub reuse_speculative: f64,
    /// Packing/unpacking traffic the candidate incurs for certain.
    pub pack: f64,
    /// Extra weight on reuse in the net formula (2.0 for the slots
    /// model's historical `saved + 2·reuse - pack`; 1.0 for cycles,
    /// where reuse is already denominated in avoided cycles).
    reuse_weight: f64,
}

impl CostedBenefit {
    /// A benefit from raw parts with the cycle model's unit reuse
    /// weight. The parts are taken as-is — including non-finite poison,
    /// which is the point: tests drive [`sanitized`](Self::sanitized)
    /// and the selector's admission guard with values the pricing code
    /// is never supposed to produce.
    pub fn from_parts(saved: f64, reuse: f64, reuse_speculative: f64, pack: f64) -> Self {
        CostedBenefit {
            saved,
            reuse,
            reuse_speculative,
            pack,
            reuse_weight: 1.0,
        }
    }

    /// The admission key: positive iff realising the candidate is
    /// expected to be cheaper than leaving its lanes scalar.
    pub fn net(&self) -> f64 {
        self.saved + self.reuse_weight * self.reuse + self.reuse_speculative - self.pack
    }

    /// The ranking key (non-negative, higher is better). Speculative
    /// reuse counts here so chain members find each other.
    pub fn rank(&self) -> f64 {
        let gain = self.saved + self.reuse_weight * self.reuse + self.reuse_speculative;
        (gain / (1.0 + self.pack)).max(0.0)
    }

    /// Finiteness boundary for everything ordering-sensitive downstream:
    /// a benefit with any non-finite component (a degenerate price gone
    /// NaN or infinite) collapses to the unselectable benefit — zero
    /// gain against infinite pack, so `net()` is `-inf` and `rank()` is
    /// `0.0`. Admission (`net() <= margin` rejects `-inf`) and ranking
    /// both then handle the poisoned candidate totally instead of
    /// letting a NaN slip through `f64`'s partial order.
    pub fn sanitized(self) -> CostedBenefit {
        let finite = self.saved.is_finite()
            && self.reuse.is_finite()
            && self.reuse_speculative.is_finite()
            && self.pack.is_finite();
        if finite {
            self
        } else {
            CostedBenefit {
                saved: 0.0,
                reuse: 0.0,
                reuse_speculative: 0.0,
                pack: f64::INFINITY,
                reuse_weight: self.reuse_weight,
            }
        }
    }
}

/// How an operand or result superword is (or is not) satisfied, shared
/// by both pricing strategies.
enum Flow {
    /// Produced/consumed in lane order by an already selected group or a
    /// prior-round packed item: traffic avoided for certain.
    Reused,
    /// Produced/consumed by the given live candidate: avoided if that
    /// candidate is selected too.
    Speculative(usize),
    /// Same value in every lane: one broadcast.
    Splat,
    /// Nobody delivers it packed: full packing traffic.
    Unresolved,
}

/// Allocation-free summary of a group's per-lane scaling amounts: the
/// pricing in [`BenefitModel::scaling_cost`] depends only on these
/// predicates, so the per-lane amounts are folded instead of collected.
#[derive(Clone, Copy)]
enum Amounts {
    /// Some lane's formats are unknown.
    Unknown,
    /// Every lane's amount is known, summarized by the predicates below.
    Known {
        all_zero: bool,
        uniform: bool,
        all_nonneg: bool,
    },
}

impl Amounts {
    /// Folds per-lane amounts, short-circuiting to [`Amounts::Unknown`]
    /// on the first unknown lane (the same cut a collecting
    /// `Option<Vec<_>>` would make).
    fn fold(amounts: impl Iterator<Item = Option<i32>>) -> Amounts {
        let mut first = None;
        let (mut all_zero, mut uniform, mut all_nonneg) = (true, true, true);
        for a in amounts {
            let Some(x) = a else {
                return Amounts::Unknown;
            };
            let f = *first.get_or_insert(x);
            all_zero &= x == 0;
            uniform &= x == f;
            all_nonneg &= x >= 0;
        }
        Amounts::Known {
            all_zero,
            uniform,
            all_nonneg,
        }
    }
}

/// Benefit estimator for one round.
pub struct BenefitModel<'a> {
    dfg: &'a Dfg,
    round: &'a Round,
    target: &'a TargetModel,
    kind: BenefitKind,
    wl: Box<dyn Fn(NodeId) -> i32 + 'a>,
    /// Current fractional word lengths (`None` = unknown: scalings are
    /// assumed uniform rather than priced per lane).
    fwl: Box<dyn Fn(NodeId) -> Option<i32> + 'a>,
    /// Whether a scaling-equalization pass (fig. 1b) runs after
    /// extraction: mismatched non-negative amounts on group-backed
    /// superwords are then priced as one vector shift (the equalizer's
    /// job), not the fig. 2 penalty.
    equalization_follows: bool,
    /// Which scheduler the flow prices blocks under. Governs the
    /// admission margin of the cycle model: under modulo scheduling the
    /// latency-boundedness hedge is dropped (see
    /// [`admission_margin`](Self::admission_margin)).
    sched: SchedKind,
    /// Memoized op prices: selection asks the same `(op kind, wl)`
    /// throughput questions for every candidate every iteration.
    prices: Prices<'a>,
    /// Memoized [`scalar_op_cycles`](Self::scalar_op_cycles) per node.
    /// One model instance prices one word-length snapshot (the selection
    /// loop rebuilds the model after every accepted selection precisely
    /// because the oracles' answers move), so within an instance a
    /// node's displaced-scalar price is a constant.
    scalar_cycles: RefCell<Vec<Option<f64>>>,
    /// Memoized `fwl` oracle answers per node, valid for the same
    /// one-snapshot lifetime as `scalar_cycles`. The oracle is a boxed
    /// closure into the flow's spec state; scaling-amount computation
    /// asks it several times per lane per candidate.
    fwl_memo: RefCell<Vec<Option<Option<i32>>>>,
}

/// The benefit model's price source: its own cache, or one shared by the
/// caller across model rebuilds (prices depend only on the target, never
/// on the word-length oracles, so the selection loop shares one cache
/// over all its per-iteration models).
enum Prices<'a> {
    Owned(CycleCache<'a>),
    Shared(&'a CycleCache<'a>),
}

impl<'a> Prices<'a> {
    fn get(&self) -> &CycleCache<'a> {
        match self {
            Prices::Owned(c) => c,
            Prices::Shared(c) => c,
        }
    }
}

impl std::fmt::Debug for BenefitModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenefitModel")
            .field("kind", &self.kind)
            .field("candidates", &self.round.candidates.len())
            .finish_non_exhaustive()
    }
}

impl<'a> BenefitModel<'a> {
    /// Creates the estimator with the default strategy and every node at
    /// the target's maximum word length (no word-length context).
    pub fn new(dfg: &'a Dfg, round: &'a Round, target: &'a TargetModel) -> Self {
        let max = target.max_wl();
        Self::with_kind(dfg, round, target, BenefitKind::default(), move |_| max)
    }

    /// Creates the estimator with an explicit strategy and a word-length
    /// oracle reporting each node's *current* word length (the evolving
    /// spec under WLO↔SLP, the frozen spec under WLO-First). Scalings
    /// are assumed uniform; use [`with_context`](Self::with_context) to
    /// price them per lane.
    pub fn with_kind(
        dfg: &'a Dfg,
        round: &'a Round,
        target: &'a TargetModel,
        kind: BenefitKind,
        wl: impl Fn(NodeId) -> i32 + 'a,
    ) -> Self {
        Self::with_context(dfg, round, target, kind, wl, |_| None)
    }

    /// Creates the estimator with full word-length context: `wl` reports
    /// current word lengths, `fwl` current fractional word lengths (so
    /// per-lane scaling amounts — and the fig. 2 penalty mismatched ones
    /// carry — are priced, not assumed free).
    pub fn with_context(
        dfg: &'a Dfg,
        round: &'a Round,
        target: &'a TargetModel,
        kind: BenefitKind,
        wl: impl Fn(NodeId) -> i32 + 'a,
        fwl: impl Fn(NodeId) -> Option<i32> + 'a,
    ) -> Self {
        Self::build(
            dfg,
            round,
            target,
            Prices::Owned(CycleCache::new(target)),
            kind,
            wl,
            fwl,
        )
    }

    /// [`with_context`](Self::with_context) with a caller-provided price
    /// cache. Prices depend only on the target, so a loop that rebuilds
    /// the model per iteration (selection does, to refresh the oracles)
    /// shares one warmed cache across every rebuild.
    pub fn with_context_shared(
        dfg: &'a Dfg,
        round: &'a Round,
        prices: &'a CycleCache<'a>,
        kind: BenefitKind,
        wl: impl Fn(NodeId) -> i32 + 'a,
        fwl: impl Fn(NodeId) -> Option<i32> + 'a,
    ) -> Self {
        Self::build(
            dfg,
            round,
            prices.target(),
            Prices::Shared(prices),
            kind,
            wl,
            fwl,
        )
    }

    fn build(
        dfg: &'a Dfg,
        round: &'a Round,
        target: &'a TargetModel,
        prices: Prices<'a>,
        kind: BenefitKind,
        wl: impl Fn(NodeId) -> i32 + 'a,
        fwl: impl Fn(NodeId) -> Option<i32> + 'a,
    ) -> Self {
        BenefitModel {
            dfg,
            round,
            target,
            kind,
            wl: Box::new(wl),
            fwl: Box::new(fwl),
            equalization_follows: false,
            sched: SchedKind::List,
            prices,
            scalar_cycles: RefCell::new(vec![None; dfg.len()]),
            fwl_memo: RefCell::new(vec![None; dfg.len()]),
        }
    }

    /// Memoized `fwl` oracle read (see `fwl_memo`).
    fn fwl_of(&self, n: NodeId) -> Option<i32> {
        if let Some(v) = self.fwl_memo.borrow()[n.index()] {
            return v;
        }
        let v = (self.fwl)(n);
        self.fwl_memo.borrow_mut()[n.index()] = Some(v);
        v
    }

    /// Declares that a scaling-equalization pass (fig. 1b, `scalopt`)
    /// runs after extraction — the WLO↔SLP flow's case. Mismatched
    /// scaling amounts that the equalizer can reach (all non-negative,
    /// superword backed by a group or live candidate) are then priced as
    /// a uniform vector shift instead of the fig. 2 penalty.
    pub fn assume_equalization(mut self, yes: bool) -> Self {
        self.equalization_follows = yes;
        self
    }

    /// Declares which scheduler the flow prices blocks under (see
    /// [`admission_margin`](Self::admission_margin)). Defaults to the
    /// sequential-issue list scheduler.
    pub fn assume_sched(mut self, sched: SchedKind) -> Self {
        self.sched = sched;
        self
    }

    /// Ranking benefit of candidate `idx` (see [`CostedBenefit::rank`]).
    ///
    /// `alive[c]` marks candidates still in play; `selected` holds all
    /// groups chosen so far (prior rounds and this round).
    pub fn benefit(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> f64 {
        self.assess(idx, alive, selected).rank()
    }

    /// Net benefit of candidate `idx` (see [`CostedBenefit::net`]).
    ///
    /// Selection admits a candidate only while its net benefit is
    /// positive, re-evaluated each iteration: reuse grows as neighbouring
    /// candidates are selected, and under WLO↔SLP the displaced-scalar
    /// prices move as word lengths shrink.
    pub fn net_benefit(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> f64 {
        self.assess(idx, alive, selected).net()
    }

    /// Full priced assessment of candidate `idx`.
    pub fn assess(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> CostedBenefit {
        self.pass(alive, selected).assess(idx)
    }

    /// Starts one assessment pass over a fixed `(alive, selected)` state.
    ///
    /// A pass memoizes the one-level viability probe of speculative
    /// partners ([`shallow_viable`](Self::shallow_viable)), which is
    /// sound exactly as long as the liveness and selection state do not
    /// change — the selection loop's argmax over all live candidates is
    /// the intended scope. Use [`assess`](Self::assess) directly when
    /// assessing against varying state.
    pub fn pass<'s>(&'s self, alive: &'s [bool], selected: &'s [SimdGroup]) -> AssessPass<'s, 'a> {
        AssessPass {
            model: self,
            alive,
            selected,
            viable: RefCell::new(HashMap::new()),
        }
    }

    /// The admission threshold `net()` must clear. Zero for the slots
    /// model (its historical behaviour). Under list scheduling the cycle
    /// model demands a margin of half a chain hop (extract latency):
    /// candidate-local throughput pricing cannot see block-level
    /// latency-boundedness, so a pack whose predicted gain is within one
    /// chain hop of zero is as likely a scheduling loss as a win — on a
    /// wide-issue machine the "saved" issue slots buy nothing while the
    /// extra pack/extract hops still lengthen the critical path. Under
    /// modulo scheduling the hedge drops back to zero: overlapped
    /// iterations hide chain-hop latency (the pipeline's II is bound by
    /// resource pressure, which the throughput pricing *does* see), so
    /// packs the hedge would reject become admissible — the scheduler
    /// guard still arbitrates with the real pipelined schedule.
    pub fn admission_margin(&self) -> f64 {
        match (self.kind.pricing(), self.sched) {
            (BenefitKind::Slots, _) => 0.0,
            (_, SchedKind::Modulo { .. }) => 0.0,
            (_, SchedKind::List) => 0.5 * self.prices.get().cost(OpQuery::Extract).latency as f64,
        }
    }

    /// Is candidate `ci` plausibly worth selecting, judged on its own
    /// (one-level lookahead, no recursion): its net benefit — cleared
    /// against the same admission margin the main loop applies — with
    /// every speculative flow optimistically treated as certain. Greedy
    /// selection commits groups irreversibly, so a candidate must not be
    /// admitted on reuse with a partner that could never pay off itself
    /// — the stranded producer would eat the very packing traffic the
    /// speculation discounted.
    /// `viab` memoizes verdicts per candidate within one assessment pass
    /// (shallow assessments never recurse back here, so the probe's
    /// verdict depends only on `(ci, alive, selected)`).
    fn shallow_viable(
        &self,
        ci: usize,
        alive: &[bool],
        selected: &[SimdGroup],
        viab: &RefCell<HashMap<usize, bool>>,
    ) -> bool {
        if let Some(&v) = viab.borrow().get(&ci) {
            return v;
        }
        let g = self.round.merged(ci);
        let v =
            self.assess_cycles(g, ci, alive, selected, true, viab).net() > self.admission_margin();
        viab.borrow_mut().insert(ci, v);
        v
    }

    // -- the slots model (historical) ------------------------------------

    fn assess_slots(
        &self,
        g: &SimdGroup,
        idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
    ) -> CostedBenefit {
        let mut b = CostedBenefit {
            saved: g.lanes() as f64 - 1.0,
            reuse: 0.0,
            reuse_speculative: 0.0,
            pack: 0.0,
            reuse_weight: 2.0,
        };
        match g.kind(self.dfg) {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => match mem_status(self.dfg, g) {
                MemStatus::ContiguousAligned => b.reuse += 1.0,
                MemStatus::ContiguousUnaligned => b.pack += 1.0,
                MemStatus::Gather => b.pack += g.lanes() as f64,
                MemStatus::NotMemory => {}
            },
            NodeKind::StoreArray(..) => {
                match mem_status(self.dfg, g) {
                    MemStatus::ContiguousAligned => b.reuse += 1.0,
                    MemStatus::ContiguousUnaligned => b.pack += 1.0,
                    MemStatus::Gather => b.pack += g.lanes() as f64,
                    MemStatus::NotMemory => {}
                }
                self.slots_operand(g, 0, idx, alive, selected, &mut b);
            }
            NodeKind::Bin(_) => {
                for pos in 0..2 {
                    self.slots_operand(g, pos, idx, alive, selected, &mut b);
                }
            }
            NodeKind::Un(_) => self.slots_operand(g, 0, idx, alive, selected, &mut b),
            _ => {}
        }
        match self.result_flow(g, idx, alive, selected) {
            Some(Flow::Reused) => b.reuse += 1.0,
            Some(Flow::Speculative(_)) => b.reuse_speculative += 0.5 * 2.0,
            Some(_) => {
                b.pack += self.external_lanes(g) as f64;
            }
            None => {}
        }
        b
    }

    fn slots_operand(
        &self,
        g: &SimdGroup,
        pos: usize,
        self_idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
        b: &mut CostedBenefit,
    ) {
        let Some(sw) = self.operand_superword(g, pos) else {
            return;
        };
        match self.operand_flow(&sw, self_idx, alive, selected) {
            Flow::Reused => b.reuse += 1.0,
            Flow::Speculative(_) => b.reuse_speculative += 0.5 * 2.0,
            Flow::Splat => b.pack += 1.0,
            Flow::Unresolved => b.pack += sw.len() as f64,
        }
    }

    // -- the cycles model -------------------------------------------------

    /// The cycle-priced assessment. `shallow` is the one-level-lookahead
    /// mode of [`shallow_viable`](Self::shallow_viable): speculative
    /// flows count as certain and no further viability checks recurse.
    fn assess_cycles(
        &self,
        g: &SimdGroup,
        idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
        shallow: bool,
        viab: &RefCell<HashMap<usize, bool>>,
    ) -> CostedBenefit {
        let lanes = g.lanes();
        let t = self.prices.get();
        // Packing traffic sits on the dependency chain between scalar
        // producers/consumers and the vector op, so its price is floored
        // at the op's latency: issue-slot throughput alone would let a
        // wide machine (XENTIUM's four ALUs absorb a pack in a quarter
        // cycle) hide traffic that still serializes the critical path.
        // On single-issue targets the floor is a no-op.
        let chain = |q: OpQuery| t.cycles(q).max(t.cost(q).latency as f64);
        let pack_price = chain(OpQuery::Pack(lanes));
        // A batch of `n` extracts pays one latency to enter the chain,
        // then pipelines at the unit's throughput.
        let extracts = |n: f64| {
            if n <= 0.0 {
                0.0
            } else {
                let thr = t.cycles(OpQuery::Extract);
                (t.cost(OpQuery::Extract).latency as f64 + (n - 1.0) * thr).max(n * thr)
            }
        };
        let mut b = CostedBenefit {
            saved: 0.0,
            reuse: 0.0,
            reuse_speculative: 0.0,
            pack: 0.0,
            reuse_weight: 1.0,
        };

        // The scalar ops the group displaces, at current word lengths.
        let scalar: f64 = g.elems.iter().map(|&e| self.scalar_op_cycles(e)).sum();

        // Operand superword traffic — and, as a side product, which
        // positions are backed by a group or live candidate (those are
        // the superwords a later scaling-equalization pass can reach).
        let arity = match g.kind(self.dfg) {
            NodeKind::Bin(_) => 2,
            NodeKind::Un(_) | NodeKind::StoreArray(..) => 1,
            _ => 0,
        };
        let mut group_backed = [false; 2];
        for (pos, backed) in group_backed.iter_mut().enumerate().take(arity) {
            let Some(sw) = self.operand_superword(g, pos) else {
                continue;
            };
            match self.operand_flow(&sw, idx, alive, selected) {
                Flow::Reused => {
                    b.reuse += pack_price;
                    *backed = true;
                }
                Flow::Speculative(_) if shallow => {
                    b.reuse += pack_price;
                    *backed = true;
                }
                Flow::Speculative(ci) if self.shallow_viable(ci, alive, selected, viab) => {
                    b.reuse_speculative += 0.5 * pack_price;
                    *backed = true;
                }
                // A partner that can never pay off will not be selected:
                // this superword will really be packed lane by lane.
                Flow::Speculative(_) | Flow::Unresolved => b.pack += pack_price,
                Flow::Splat => b.pack += chain(OpQuery::Splat(lanes)),
            }
        }

        // The vector realisation's core cost, including its scalings:
        // per-lane amounts are computed from the current formats, so a
        // group whose lanes scale by different amounts carries the full
        // fig. 2 unpack/shift/repack price rather than an assumed-free
        // (or assumed-uniform) vector shift.
        let vector = match g.kind(self.dfg) {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => match mem_status(self.dfg, g) {
                MemStatus::ContiguousAligned => t.cycles(OpQuery::VLoad(lanes)),
                MemStatus::ContiguousUnaligned => t.cycles(OpQuery::VLoadU(lanes)),
                _ => t.cycles(OpQuery::Gather(lanes)),
            },
            NodeKind::StoreArray(..) => {
                let access = match mem_status(self.dfg, g) {
                    MemStatus::ContiguousAligned => t.cycles(OpQuery::VStore(lanes)),
                    MemStatus::ContiguousUnaligned => t.cycles(OpQuery::VStoreU(lanes)),
                    _ => t.cycles(OpQuery::Scatter(lanes)),
                };
                access
                    + self.scaling_cost(self.operand_amounts(g, 0), lanes, false, group_backed[0])
            }
            NodeKind::Bin(BinOp::Mul) => {
                // The result scaling is equalizable consumer-side (mul
                // lanes own their formats) whenever some operand
                // superword is group-backed.
                let equalizable = group_backed[0] || group_backed[1];
                t.cycles(OpQuery::VMul(lanes))
                    + self.scaling_cost(self.mul_amounts(g), lanes, true, equalizable)
            }
            NodeKind::Bin(_) => {
                t.cycles(OpQuery::VAdd(lanes))
                    + self.scaling_cost(self.operand_amounts(g, 0), lanes, false, group_backed[0])
                    + self.scaling_cost(self.operand_amounts(g, 1), lanes, false, group_backed[1])
            }
            NodeKind::Un(_) => {
                t.cycles(OpQuery::VAdd(lanes))
                    + self.scaling_cost(self.operand_amounts(g, 0), lanes, false, group_backed[0])
            }
            _ => 0.0,
        };
        b.saved = scalar - vector;

        // What a packed consumer saves depends on what this group is:
        // consumers of a *load* group's result would otherwise pack the
        // scalar loads (one `Pack`, which a gathered load group still
        // pays itself — its reuse nets out to zero, as it should);
        // consumers of a *compute* group's result would otherwise force
        // one extract per lane.
        let result_reuse_price = match g.kind(self.dfg) {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => pack_price,
            _ => extracts(lanes as f64),
        };
        match self.result_flow(g, idx, alive, selected) {
            Some(Flow::Reused) => b.reuse += result_reuse_price,
            Some(Flow::Speculative(_)) if shallow => {
                b.reuse += result_reuse_price;
            }
            Some(Flow::Speculative(ci)) if self.shallow_viable(ci, alive, selected, viab) => {
                b.reuse_speculative += 0.5 * result_reuse_price;
            }
            Some(_) => b.pack += extracts(self.external_lanes(g) as f64),
            None => {}
        }
        b
    }

    /// Throughput cycles of the scalar op lane `e` currently costs, at
    /// its current (container) word length — including the scaling
    /// shifts scalar lowering pairs with it when the current formats
    /// demand them. Memoized per node for the model's lifetime (one
    /// word-length snapshot).
    fn scalar_op_cycles(&self, e: NodeId) -> f64 {
        if let Some(v) = self.scalar_cycles.borrow()[e.index()] {
            return v;
        }
        let v = self.scalar_op_cycles_uncached(e);
        self.scalar_cycles.borrow_mut()[e.index()] = Some(v);
        v
    }

    fn scalar_op_cycles_uncached(&self, e: NodeId) -> f64 {
        let t = self.prices.get();
        let cwl = |n: NodeId| self.container_wl(n);
        // One scalar requantization shift, unless the amount is known to
        // be zero. `assume` is the unknown-format default: multiplies
        // almost always rescale their double-width product, additive ops
        // usually absorb operands on their own grid.
        let shift = |amount: Option<i32>, assume: bool| -> f64 {
            match amount {
                Some(0) => 0.0,
                Some(_) => t.cycles(OpQuery::Shift(cwl(e))),
                None if assume => t.cycles(OpQuery::Shift(cwl(e))),
                None => 0.0,
            }
        };
        match &self.dfg.node(e).kind {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => t.cycles(OpQuery::Load(cwl(e))),
            NodeKind::StoreArray(..) => {
                t.cycles(OpQuery::Store(cwl(e))) + shift(self.node_operand_amount(e, 0), false)
            }
            NodeKind::Bin(BinOp::Mul) => {
                let in_wl = self
                    .round
                    .resolved_ops(e)
                    .iter()
                    .map(|&o| cwl(o))
                    .max()
                    .unwrap_or(cwl(e));
                t.cycles(OpQuery::Mul(in_wl)) + shift(self.node_mul_amount(e), true)
            }
            NodeKind::Bin(_) => {
                t.cycles(OpQuery::Add(cwl(e)))
                    + shift(self.node_operand_amount(e, 0), false)
                    + shift(self.node_operand_amount(e, 1), false)
            }
            NodeKind::Un(_) => {
                t.cycles(OpQuery::Add(cwl(e))) + shift(self.node_operand_amount(e, 0), false)
            }
            _ => 0.0,
        }
    }

    /// Current container word length of a node's value.
    fn container_wl(&self, n: NodeId) -> i32 {
        let t = self.target;
        let wl = (self.wl)(n).clamp(1, t.datapath);
        t.container_wl(wl).unwrap_or(t.datapath)
    }

    /// Result-scaling amount of a scalar multiply at current formats
    /// (`fwl(a) + fwl(b) - fwl(e)`); `None` when any format is unknown.
    fn node_mul_amount(&self, e: NodeId) -> Option<i32> {
        let ops = self.round.resolved_ops(e);
        let a = self.fwl_of(*ops.first()?)?;
        let b = self.fwl_of(*ops.get(1)?)?;
        Some(a + b - self.fwl_of(e)?)
    }

    /// Alignment amount of operand `pos` of node `e` at current formats
    /// (`fwl(op) - fwl(e)`); `None` when unknown.
    fn node_operand_amount(&self, e: NodeId, pos: usize) -> Option<i32> {
        let op = *self.round.resolved_ops(e).get(pos)?;
        Some(self.fwl_of(op)? - self.fwl_of(e)?)
    }

    /// Per-lane multiply result-scaling amounts of a group, folded to
    /// the predicates [`scaling_cost`](Self::scaling_cost) prices on;
    /// [`Amounts::Unknown`] when any lane's formats are unknown.
    fn mul_amounts(&self, g: &SimdGroup) -> Amounts {
        Amounts::fold(g.elems.iter().map(|&e| self.node_mul_amount(e)))
    }

    /// Per-lane operand alignment amounts of a group at position `pos`,
    /// folded the same way.
    fn operand_amounts(&self, g: &SimdGroup, pos: usize) -> Amounts {
        Amounts::fold(g.elems.iter().map(|&e| self.node_operand_amount(e, pos)))
    }

    /// Price of realising a vector scaling with the given per-lane
    /// amounts: nothing when all zero, one vector shift when uniform,
    /// the fig. 2 unpack/shift-per-lane/repack when mismatched. Unknown
    /// amounts (`None`) mirror the scalar side's defaults — a uniform
    /// vector shift when `assume` holds (multiply result scaling),
    /// nothing otherwise — so unknown-format pricing never biases the
    /// vector realisation against its scalar baseline.
    ///
    /// A mismatch is downgraded to the uniform vector-shift price when a
    /// scaling-equalization pass follows ([`assume_equalization`]
    /// (Self::assume_equalization)), the superword is `equalizable`
    /// (group-backed, so fig. 1b's reuse enumeration will see it) and
    /// every amount is non-negative (the equalizer skips mixed-sign
    /// amounts).
    fn scaling_cost(&self, amounts: Amounts, lanes: u32, assume: bool, equalizable: bool) -> f64 {
        let p = self.prices.get();
        match amounts {
            Amounts::Known { all_zero: true, .. } => 0.0,
            Amounts::Known { uniform: true, .. } => p.cycles(OpQuery::VShift(lanes)),
            Amounts::Known { all_nonneg, .. }
                if self.equalization_follows && equalizable && all_nonneg =>
            {
                p.cycles(OpQuery::VShift(lanes))
            }
            Amounts::Known { .. } => {
                let t = self.target;
                let elem = t.simd_element_wl(lanes).unwrap_or(t.datapath);
                lanes as f64 * (p.cycles(OpQuery::Extract) + p.cycles(OpQuery::Shift(elem)))
                    + p.cycles(OpQuery::Pack(lanes))
            }
            Amounts::Unknown if assume => p.cycles(OpQuery::VShift(lanes)),
            Amounts::Unknown => 0.0,
        }
    }

    // -- shared structural analysis --------------------------------------

    /// The operand superword of `g` at position `pos` (`None` when some
    /// lane has no operand there).
    fn operand_superword(&self, g: &SimdGroup, pos: usize) -> Option<Vec<NodeId>> {
        g.elems
            .iter()
            .map(|&e| self.round.resolved_ops(e).get(pos).copied())
            .collect()
    }

    /// Classifies how an operand superword is delivered.
    fn operand_flow(
        &self,
        sw: &[NodeId],
        self_idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
    ) -> Flow {
        // Produced by an already selected group, in lane order?
        if selected.iter().any(|s| s.elems == sw) {
            return Flow::Reused;
        }
        // Produced by another live candidate, in lane order?
        if let Some(ci) = self.matching_candidate(sw, self_idx, alive) {
            return Flow::Speculative(ci);
        }
        // Splat (same value in every lane): one broadcast.
        if sw.iter().all(|&n| n == sw[0]) {
            return Flow::Splat;
        }
        // Whole superword already packed as an item (e.g. a prior-round
        // group feeding an extension candidate).
        if self
            .round
            .item_of(sw)
            .is_some_and(|i| self.round.items[i].lanes() > 1)
        {
            return Flow::Reused;
        }
        Flow::Unresolved
    }

    /// Classifies how the group's results are consumed. `None` for
    /// stores (no value); `Unresolved` means scalar users need extracts.
    fn result_flow(
        &self,
        g: &SimdGroup,
        self_idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
    ) -> Option<Flow> {
        if matches!(g.kind(self.dfg), NodeKind::StoreArray(..)) {
            return None; // stores produce no value
        }
        // A consumer superword exists if some selected group or live
        // candidate uses lane i's value in its lane i, at one common
        // operand position — only then does the result flow register to
        // register (lowering's `vector_operand` materialises operand
        // superwords per position; lanes consumed at different positions
        // would still be extracted).
        let consumed_by = |cons: &SimdGroup| -> bool {
            if cons.lanes() != g.lanes() {
                return false;
            }
            let arity = cons
                .elems
                .iter()
                .map(|&u| self.round.resolved_ops(u).len())
                .min()
                .unwrap_or(0);
            (0..arity).any(|pos| {
                g.elems
                    .iter()
                    .zip(&cons.elems)
                    .all(|(&prod, &user)| self.round.resolved_ops(user).get(pos) == Some(&prod))
            })
        };
        if selected.iter().any(&consumed_by) {
            return Some(Flow::Reused);
        }
        // Candidate consumers come from the round's inverted index: every
        // candidate with `g.elems` as an operand superword, in candidate
        // order (so the first live one matches the original linear scan).
        for &ci in self.round.consumers_of(&g.elems) {
            if alive[ci] && ci != self_idx {
                return Some(Flow::Speculative(ci));
            }
        }
        Some(Flow::Unresolved)
    }

    /// Lanes whose value has scalar users outside the group (each needs
    /// an extract when no consumer superword exists).
    fn external_lanes(&self, g: &SimdGroup) -> usize {
        g.elems
            .iter()
            .filter(|&&e| self.round.node_has_users(e))
            .count()
    }

    /// The live candidate (other than `self_idx`) whose merged lanes
    /// equal `sw`, if any.
    ///
    /// Splitting `sw` at its midpoint is exhaustive: candidates merge two
    /// equal-size items, so a candidate producing `sw` must be the pair
    /// of items holding its two halves (for `sw.len() == 2` those are
    /// the singleton items, which `Round::item_of` resolves like any
    /// other). When either half is not an item, no candidate can produce
    /// `sw`.
    fn matching_candidate(&self, sw: &[NodeId], self_idx: usize, alive: &[bool]) -> Option<usize> {
        if sw.len() < 2 {
            return None;
        }
        let half = sw.len() / 2;
        let (Some(li), Some(ri)) = (
            self.round.item_of(&sw[..half]),
            self.round.item_of(&sw[half..]),
        ) else {
            return None;
        };
        let ci = self.round.candidate_of(li, ri)?;
        (ci != self_idx && alive[ci]).then_some(ci)
    }

    // -- exact-selection support ------------------------------------------

    /// Optimistic (shallow) assessment of candidate `idx`: every
    /// speculative flow counts as certain full-price reuse, with no
    /// viability recursion. For the cycle pricing this upper-bounds the
    /// candidate's *in-set* net benefit over every possible chosen set —
    /// a flow either resolves to certain reuse (what the optimism
    /// already credits) or degrades to packing traffic — which is what
    /// makes it a sound branch-and-bound bound for
    /// [`BenefitKind::Optimal`]. Sanitized like every pass assessment.
    pub fn assess_optimistic(
        &self,
        idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
    ) -> CostedBenefit {
        let g = self.round.merged(idx);
        match self.kind.pricing() {
            BenefitKind::Slots => self.assess_slots(g, idx, alive, selected),
            _ => {
                let viab = RefCell::new(HashMap::new());
                self.assess_cycles(g, idx, alive, selected, true, &viab)
            }
        }
        .sanitized()
    }

    /// The live candidates whose selection changes candidate `idx`'s
    /// pricing through superword reuse: producers of its operand
    /// superwords and consumers of its result superword. The relation is
    /// symmetric (a producer's consumer index lists `idx` back), so its
    /// connected components partition the round's candidates into
    /// pricing-independent islands — the exact selector searches only
    /// components that contain a positively-valued member.
    pub fn reuse_partners(&self, idx: usize, alive: &[bool]) -> Vec<usize> {
        let g = self.round.merged(idx);
        let mut out = Vec::new();
        let arity = match g.kind(self.dfg) {
            NodeKind::Bin(_) => 2,
            NodeKind::Un(_) | NodeKind::StoreArray(..) => 1,
            _ => 0,
        };
        for pos in 0..arity {
            if let Some(sw) = self.operand_superword(g, pos) {
                if let Some(ci) = self.matching_candidate(&sw, idx, alive) {
                    out.push(ci);
                }
            }
        }
        if !matches!(g.kind(self.dfg), NodeKind::StoreArray(..)) {
            for &ci in self.round.consumers_of(&g.elems) {
                if ci != idx && alive[ci] {
                    out.push(ci);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One assessment pass over a fixed `(alive, selected)` state — see
/// [`BenefitModel::pass`].
///
/// Holds the per-pass viability memo; the verdicts it caches are only
/// valid while the liveness and selection state stay fixed, which is why
/// the memo lives here and not on the model.
pub struct AssessPass<'s, 'a> {
    model: &'s BenefitModel<'a>,
    alive: &'s [bool],
    selected: &'s [SimdGroup],
    viable: RefCell<HashMap<usize, bool>>,
}

impl AssessPass<'_, '_> {
    /// Full priced assessment of candidate `idx` — identical to
    /// [`BenefitModel::assess`] with the pass's state. The result is
    /// [`sanitized`](CostedBenefit::sanitized): non-finite prices leave
    /// here as the unselectable benefit, never as a NaN `net()`.
    pub fn assess(&self, idx: usize) -> CostedBenefit {
        let g = self.model.round.merged(idx);
        match self.model.kind.pricing() {
            BenefitKind::Slots => self.model.assess_slots(g, idx, self.alive, self.selected),
            _ => self
                .model
                .assess_cycles(g, idx, self.alive, self.selected, false, &self.viable),
        }
        .sanitized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::resolved_operands;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::{vex, xentium};

    fn fir_unrolled() -> Dfg {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_stmts(&k, &blocks[0].stmts)
    }

    fn models<'a>(
        dfg: &'a Dfg,
        round: &'a Round,
        target: &'a TargetModel,
    ) -> [BenefitModel<'a>; 2] {
        let max = target.max_wl();
        [
            BenefitModel::with_kind(dfg, round, target, BenefitKind::Slots, move |_| max),
            BenefitModel::with_kind(dfg, round, target, BenefitKind::Cycles, move |_| 16),
        ]
    }

    #[test]
    fn adjacent_load_pairs_beat_gather_pairs() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        for model in models(&dfg, &round, &target) {
            let alive = vec![true; round.candidates.len()];
            let mut best_adjacent = f64::MIN;
            let mut best_gather = f64::MIN;
            for idx in 0..round.candidates.len() {
                let c = round.candidates[idx];
                let g = round.items[c.left].concat(&round.items[c.right]);
                if matches!(g.kind(&dfg), NodeKind::LoadArray(..)) {
                    let b = model.benefit(idx, &alive, &[]);
                    match mem_status(&dfg, &g) {
                        MemStatus::ContiguousAligned => best_adjacent = best_adjacent.max(b),
                        MemStatus::Gather => best_gather = best_gather.max(b),
                        _ => {}
                    }
                }
            }
            assert!(
                best_adjacent > best_gather,
                "{:?}: {best_adjacent} vs {best_gather}",
                model.kind
            );
        }
    }

    #[test]
    fn candidate_reuse_raises_benefit() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        for model in models(&dfg, &round, &target) {
            let alive = vec![true; round.candidates.len()];
            let dead = vec![false; round.candidates.len()];
            for idx in 0..round.candidates.len() {
                let c = round.candidates[idx];
                let g = round.items[c.left].concat(&round.items[c.right]);
                if matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                    let with_cands = model.benefit(idx, &alive, &[]);
                    let without = model.benefit(idx, &dead, &[]);
                    assert!(
                        with_cands >= without,
                        "{:?}: live operand candidates must not lower benefit \
                         ({with_cands} vs {without})",
                        model.kind
                    );
                }
            }
        }
    }

    #[test]
    fn selected_reuse_beats_candidate_reuse() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        for model in models(&dfg, &round, &target) {
            let alive = vec![true; round.candidates.len()];
            // Take the first mul pair candidate; compare benefit with its
            // operand loads merely candidates vs actually selected.
            let mut checked = false;
            for idx in 0..round.candidates.len() {
                let c = round.candidates[idx];
                let g = round.items[c.left].concat(&round.items[c.right]);
                if !matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                    continue;
                }
                let param_sw: Vec<NodeId> = g
                    .elems
                    .iter()
                    .map(|&e| resolved_operands(&dfg, e)[0])
                    .collect();
                let array_sw: Vec<NodeId> = g
                    .elems
                    .iter()
                    .map(|&e| resolved_operands(&dfg, e)[1])
                    .collect();
                let selected = vec![SimdGroup { elems: param_sw }, SimdGroup { elems: array_sw }];
                let b_sel = model.benefit(idx, &alive, &selected);
                let b_cand = model.benefit(idx, &alive, &[]);
                assert!(b_sel > b_cand, "{:?}: {b_sel} vs {b_cand}", model.kind);
                checked = true;
                break;
            }
            assert!(checked, "no mul candidate found");
        }
    }

    #[test]
    fn two_lane_singleton_operands_count_as_candidate_reuse() {
        // Pins the `matching_candidate` contract the dead `sw.len() == 2`
        // special case used to obscure: a 2-lane operand superword whose
        // halves are singleton items with a live merge candidate *is*
        // candidate reuse, and killing that candidate removes it.
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let model = BenefitModel::new(&dfg, &round, &target);
        let mut verified = false;
        for idx in 0..round.candidates.len() {
            let c = round.candidates[idx];
            let g = round.items[c.left].concat(&round.items[c.right]);
            if !matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                continue;
            }
            // Both operand superwords (param loads, array loads) are made
            // of singleton items and have live load-pair candidates.
            for pos in 0..2 {
                let sw: Vec<NodeId> = g
                    .elems
                    .iter()
                    .map(|&e| resolved_operands(&dfg, e)[pos])
                    .collect();
                assert_eq!(sw.len(), 2);
                let alive = vec![true; round.candidates.len()];
                assert!(
                    model.matching_candidate(&sw, idx, &alive).is_some(),
                    "operand pair {sw:?} must be recognised as a live candidate"
                );
                // Kill every candidate: the reuse disappears.
                let dead = vec![false; round.candidates.len()];
                assert!(model.matching_candidate(&sw, idx, &dead).is_none());
                verified = true;
            }
            break;
        }
        assert!(verified, "no mul candidate found");
    }

    #[test]
    fn cycles_model_prices_packing_higher_on_single_issue() {
        // The same structural candidate must carry strictly more packing
        // cost on VEX-1 (every pack insert is a whole cycle) than on
        // XENTIUM (four ALUs absorb inserts), and an isolated mul pair
        // (operand candidates dead, scalar consumers) must be a clear
        // net loss on the single-issue machine.
        let dfg = fir_unrolled();
        let narrow = vex(1);
        let wide = xentium();
        let pack_of = |target: &TargetModel| -> f64 {
            let round = Round::new(&dfg, target, &[]);
            let model = BenefitModel::with_kind(&dfg, &round, target, BenefitKind::Cycles, |_| 16);
            let dead = vec![false; round.candidates.len()];
            for idx in 0..round.candidates.len() {
                let c = round.candidates[idx];
                let g = round.items[c.left].concat(&round.items[c.right]);
                if matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                    let b = model.assess(idx, &dead, &[]);
                    if target.issue_width == 1 {
                        assert!(
                            b.net() < 0.0,
                            "VEX-1: isolated mul pack must be a loss, got {b:?}"
                        );
                    }
                    return b.pack;
                }
            }
            panic!("no mul candidate found");
        };
        assert!(
            pack_of(&narrow) > pack_of(&wide),
            "single-issue packing must be priced higher"
        );
    }

    #[test]
    fn cycles_model_rewards_displacing_wide_multiplies() {
        // At 32-bit current word lengths a mul pair displaces two
        // macro-expanded multiplies on XENTIUM — the saved term must be
        // larger than at 16-bit current word lengths.
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let wide = BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| 32);
        let narrow = BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| 16);
        let alive = vec![true; round.candidates.len()];
        for idx in 0..round.candidates.len() {
            let c = round.candidates[idx];
            let g = round.items[c.left].concat(&round.items[c.right]);
            if matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                let b32 = wide.assess(idx, &alive, &[]);
                let b16 = narrow.assess(idx, &alive, &[]);
                assert!(
                    b32.saved > b16.saved,
                    "32-bit displacement must save more: {b32:?} vs {b16:?}"
                );
            }
        }
    }

    #[test]
    fn sanitized_collapses_non_finite_benefits() {
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for slot in 0..4 {
                let mut parts = [1.0, 2.0, 0.5, 3.0];
                parts[slot] = poison;
                let b =
                    CostedBenefit::from_parts(parts[0], parts[1], parts[2], parts[3]).sanitized();
                assert_eq!(b.net(), f64::NEG_INFINITY, "slot {slot} poison {poison}");
                assert_eq!(b.rank(), 0.0, "slot {slot} poison {poison}");
            }
        }
        // A finite benefit passes through unchanged.
        let b = CostedBenefit::from_parts(1.0, 2.0, 0.5, 3.0);
        assert_eq!(b.sanitized(), b);
    }

    #[test]
    fn optimal_kind_prices_as_cycles() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let cycles = BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| 16);
        let optimal =
            BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::optimal(), |_| 16);
        assert_eq!(BenefitKind::optimal().pricing(), BenefitKind::Cycles);
        assert_eq!(BenefitKind::optimal().name(), "optimal");
        assert_eq!(cycles.admission_margin(), optimal.admission_margin());
        let alive = vec![true; round.candidates.len()];
        for idx in 0..round.candidates.len() {
            assert_eq!(
                cycles.assess(idx, &alive, &[]),
                optimal.assess(idx, &alive, &[]),
                "candidate {idx}: Optimal must assess exactly as Cycles"
            );
        }
    }

    #[test]
    fn optimistic_assessment_bounds_the_in_set_assessment() {
        // The branch-and-bound soundness invariant: the shallow
        // optimistic net is an upper bound on the candidate's net under
        // *any* committed set — probed here against the empty set and
        // against every single-partner set, with liveness off (the
        // in-set pricing the exact selector's value function uses).
        let dfg = fir_unrolled();
        for target in [xentium(), vex(1), vex(4)] {
            let round = Round::new(&dfg, &target, &[]);
            let model = BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| 16);
            let alive = vec![true; round.candidates.len()];
            let dead = vec![false; round.candidates.len()];
            for idx in 0..round.candidates.len() {
                let opt = model.assess_optimistic(idx, &alive, &[]).net();
                let bare = model.assess(idx, &dead, &[]).net();
                assert!(
                    opt >= bare - 1e-9,
                    "{}: cand {idx} optimistic {opt} < bare in-set {bare}",
                    target.name
                );
                for p in model.reuse_partners(idx, &alive) {
                    let sel = vec![round.merged(p).clone()];
                    let with = model.assess(idx, &dead, &sel).net();
                    assert!(
                        opt >= with - 1e-9,
                        "{}: cand {idx} optimistic {opt} < in-set-with-{p} {with}",
                        target.name
                    );
                }
            }
        }
    }

    #[test]
    fn reuse_partners_is_symmetric() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let model = BenefitModel::with_kind(&dfg, &round, &target, BenefitKind::Cycles, |_| 16);
        let alive = vec![true; round.candidates.len()];
        let mut edges = 0;
        for idx in 0..round.candidates.len() {
            for p in model.reuse_partners(idx, &alive) {
                edges += 1;
                assert!(
                    model.reuse_partners(p, &alive).contains(&idx),
                    "edge {idx} -> {p} has no back edge"
                );
            }
        }
        assert!(edges > 0, "FIR must expose at least one reuse edge");
    }

    #[test]
    fn rank_is_finite_and_non_negative() {
        let dfg = fir_unrolled();
        for target in [xentium(), vex(1), vex(4)] {
            let round = Round::new(&dfg, &target, &[]);
            for model in models(&dfg, &round, &target) {
                let alive = vec![true; round.candidates.len()];
                for idx in 0..round.candidates.len() {
                    let b = model.benefit(idx, &alive, &[]);
                    assert!(b.is_finite() && b >= 0.0, "{:?}: {b}", model.kind);
                }
            }
        }
    }
}
