//! Candidate benefit estimation.
//!
//! Follows the spirit of Liu et al. (PLDI 2012), as adopted by the paper:
//! "the benefit of a candidate is the ratio of superwords reuse it
//! enables, if it gets selected, to the overall packing/unpacking cost".
//!
//! Concretely, for a merged group `g`:
//!
//! * each operand superword that is produced by an already-selected group
//!   (weight 1.0) or by another live candidate (weight 0.5) counts as
//!   reuse — the vector flows register-to-register;
//! * memory groups get reuse for contiguous aligned accesses (a single
//!   SIMD load/store) and packing cost for unaligned or gathered ones;
//! * operand superwords nobody produces cost one insert op per lane
//!   (splats cost a single broadcast);
//! * results consumed by a matching candidate/selected superword count as
//!   reuse, otherwise each externally-consumed lane costs an extract op;
//! * a group of `L` lanes intrinsically saves `L - 1` issue slots.
//!
//! `benefit = (saved + 2·reuse) / (1 + pack_ops)`, deterministic and
//! strictly positive so ties break on candidate order.

use crate::candidate::Round;
use crate::group::{effective_users, mem_status, resolved_operands, MemStatus, SimdGroup};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_targets::TargetModel;

/// Benefit estimator for one round.
#[derive(Debug)]
pub struct BenefitModel<'a> {
    dfg: &'a Dfg,
    round: &'a Round,
}

impl<'a> BenefitModel<'a> {
    /// Creates the estimator.
    pub fn new(dfg: &'a Dfg, round: &'a Round, _target: &TargetModel) -> Self {
        BenefitModel { dfg, round }
    }

    /// Estimates the benefit of candidate `idx` (the selection loop's
    /// ranking key).
    ///
    /// `alive[c]` marks candidates still in play; `selected` holds all
    /// groups chosen so far (prior rounds and this round).
    pub fn benefit(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> f64 {
        let (saved, reuse, pack_ops) = self.contributions(idx, alive, selected);
        (saved + 2.0 * reuse) / (1.0 + pack_ops)
    }

    /// The *net* benefit of realising candidate `idx`: issue slots saved
    /// plus reuse, minus the packing/unpacking operations it forces.
    ///
    /// The ratio form of [`BenefitModel::benefit`] is strictly positive
    /// (a group of `L` lanes always saves `L - 1` slots), which makes it
    /// a ranking key only — selecting by it alone packs *everything*,
    /// including pairs whose inserts and extracts cost more than the
    /// single saved slot. Selection admits a candidate only while its
    /// net benefit is positive (re-evaluated each iteration: reuse grows
    /// as neighbouring candidates are selected).
    pub fn net_benefit(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> f64 {
        self.assess(idx, alive, selected).0
    }

    /// `(net benefit, ranking benefit)` from one contributions walk —
    /// the selection loop needs both per candidate per iteration.
    pub fn assess(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> (f64, f64) {
        let (saved, reuse, pack_ops) = self.contributions(idx, alive, selected);
        (
            saved + 2.0 * reuse - pack_ops,
            (saved + 2.0 * reuse) / (1.0 + pack_ops),
        )
    }

    /// `(saved slots, reuse, packing ops)` of candidate `idx`.
    fn contributions(&self, idx: usize, alive: &[bool], selected: &[SimdGroup]) -> (f64, f64, f64) {
        let c = self.round.candidates[idx];
        let g = self.round.items[c.left].concat(&self.round.items[c.right]);
        let lanes = g.lanes() as f64;
        let mut reuse = 0.0;
        let mut pack_ops = 0.0;

        match g.kind(self.dfg) {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                self.mem_contribution(&g, &mut reuse, &mut pack_ops);
            }
            NodeKind::StoreArray(..) => {
                self.mem_contribution(&g, &mut reuse, &mut pack_ops);
                self.operand_contribution(&g, 0, idx, alive, selected, &mut reuse, &mut pack_ops);
            }
            NodeKind::Bin(_) => {
                for pos in 0..2 {
                    self.operand_contribution(
                        &g,
                        pos,
                        idx,
                        alive,
                        selected,
                        &mut reuse,
                        &mut pack_ops,
                    );
                }
            }
            NodeKind::Un(_) => {
                self.operand_contribution(&g, 0, idx, alive, selected, &mut reuse, &mut pack_ops);
            }
            _ => {}
        }

        self.result_contribution(&g, idx, alive, selected, &mut reuse, &mut pack_ops);

        (lanes - 1.0, reuse, pack_ops)
    }

    fn mem_contribution(&self, g: &SimdGroup, reuse: &mut f64, pack_ops: &mut f64) {
        match mem_status(self.dfg, g) {
            MemStatus::ContiguousAligned => *reuse += 1.0,
            MemStatus::ContiguousUnaligned => *pack_ops += 1.0,
            MemStatus::Gather => *pack_ops += g.lanes() as f64,
            MemStatus::NotMemory => {}
        }
    }

    /// Contribution of the operand superword at position `pos`.
    #[allow(clippy::too_many_arguments)]
    fn operand_contribution(
        &self,
        g: &SimdGroup,
        pos: usize,
        self_idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
        reuse: &mut f64,
        pack_ops: &mut f64,
    ) {
        let superword: Option<Vec<NodeId>> = g
            .elems
            .iter()
            .map(|&e| resolved_operands(self.dfg, e).get(pos).copied())
            .collect();
        let Some(sw) = superword else { return };

        // Produced by an already selected group, in lane order?
        if selected.iter().any(|s| s.elems == sw) {
            *reuse += 1.0;
            return;
        }
        // Produced by another live candidate, in lane order?
        if self.matching_candidate(&sw, self_idx, alive) {
            *reuse += 0.5;
            return;
        }
        // Splat (same value in every lane): one broadcast.
        if sw.iter().all(|&n| n == sw[0]) {
            *pack_ops += 1.0;
            return;
        }
        // Whole superword already packed as an item (e.g. a prior-round
        // group feeding an extension candidate).
        if self
            .round
            .item_of(&sw)
            .is_some_and(|i| self.round.items[i].lanes() > 1)
        {
            *reuse += 1.0;
            return;
        }
        // Otherwise: one insert per lane.
        *pack_ops += sw.len() as f64;
    }

    /// Reuse/unpack contribution of the group's results.
    fn result_contribution(
        &self,
        g: &SimdGroup,
        self_idx: usize,
        alive: &[bool],
        selected: &[SimdGroup],
        reuse: &mut f64,
        pack_ops: &mut f64,
    ) {
        if matches!(g.kind(self.dfg), NodeKind::StoreArray(..)) {
            return; // stores produce no value
        }
        // A consumer superword exists if some selected group or live
        // candidate uses lane i's value in its lane i (any operand
        // position).
        let consumed_by = |cons: &SimdGroup| -> bool {
            g.elems
                .iter()
                .zip(&cons.elems)
                .all(|(&prod, &user)| resolved_operands(self.dfg, user).contains(&prod))
                && cons.lanes() == g.lanes()
        };
        if selected.iter().any(&consumed_by) {
            *reuse += 1.0;
            return;
        }
        for (ci, alive_flag) in alive.iter().enumerate() {
            if !alive_flag || ci == self_idx {
                continue;
            }
            let c = self.round.candidates[ci];
            let cons = self.round.items[c.left].concat(&self.round.items[c.right]);
            if consumed_by(&cons) {
                *reuse += 0.5;
                return;
            }
        }
        // No consumer superword: each lane with scalar users needs an
        // extract.
        let external: usize = g
            .elems
            .iter()
            .filter(|&&e| !effective_users(self.dfg, e).is_empty())
            .count();
        *pack_ops += external as f64;
    }

    /// Is there a live candidate (other than `self_idx`) whose merged
    /// lanes equal `sw`?
    fn matching_candidate(&self, sw: &[NodeId], self_idx: usize, alive: &[bool]) -> bool {
        if sw.len() < 2 {
            return false;
        }
        let half = sw.len() / 2;
        let (Some(li), Some(ri)) = (
            self.round.item_of(&sw[..half]),
            self.round.item_of(&sw[half..]),
        ) else {
            // Items may also match as singletons for lanes()==2.
            if sw.len() == 2 {
                return false;
            }
            return false;
        };
        match self.round.candidate_of(li, ri) {
            Some(ci) => ci != self_idx && alive[ci],
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    fn fir_unrolled() -> Dfg {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_stmts(&k, &blocks[0].stmts)
    }

    #[test]
    fn adjacent_load_pairs_beat_gather_pairs() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let model = BenefitModel::new(&dfg, &round, &target);
        let alive = vec![true; round.candidates.len()];
        let mut best_adjacent = f64::MIN;
        let mut best_gather = f64::MIN;
        for idx in 0..round.candidates.len() {
            let c = round.candidates[idx];
            let g = round.items[c.left].concat(&round.items[c.right]);
            if matches!(g.kind(&dfg), NodeKind::LoadArray(..)) {
                let b = model.benefit(idx, &alive, &[]);
                match mem_status(&dfg, &g) {
                    MemStatus::ContiguousAligned => best_adjacent = best_adjacent.max(b),
                    MemStatus::Gather => best_gather = best_gather.max(b),
                    _ => {}
                }
            }
        }
        assert!(
            best_adjacent > best_gather,
            "{best_adjacent} vs {best_gather}"
        );
    }

    #[test]
    fn candidate_reuse_raises_benefit() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let model = BenefitModel::new(&dfg, &round, &target);
        // Find the mul-pair candidate (c0*dl0, c1*dl1): its operands are
        // the adjacent load pairs, which exist as candidates => reuse.
        let alive = vec![true; round.candidates.len()];
        let dead = vec![false; round.candidates.len()];
        for idx in 0..round.candidates.len() {
            let c = round.candidates[idx];
            let g = round.items[c.left].concat(&round.items[c.right]);
            if matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                let with_cands = model.benefit(idx, &alive, &[]);
                let without = model.benefit(idx, &dead, &[]);
                assert!(
                    with_cands >= without,
                    "live operand candidates must not lower benefit ({with_cands} vs {without})"
                );
            }
        }
    }

    #[test]
    fn selected_reuse_beats_candidate_reuse() {
        let dfg = fir_unrolled();
        let target = xentium();
        let round = Round::new(&dfg, &target, &[]);
        let model = BenefitModel::new(&dfg, &round, &target);
        let alive = vec![true; round.candidates.len()];
        // Take the first mul pair candidate; compare benefit with its
        // operand loads merely candidates vs actually selected.
        for idx in 0..round.candidates.len() {
            let c = round.candidates[idx];
            let g = round.items[c.left].concat(&round.items[c.right]);
            if !matches!(g.kind(&dfg), NodeKind::Bin(slpwlo_ir::BinOp::Mul)) {
                continue;
            }
            let param_sw: Vec<NodeId> = g
                .elems
                .iter()
                .map(|&e| resolved_operands(&dfg, e)[0])
                .collect();
            let array_sw: Vec<NodeId> = g
                .elems
                .iter()
                .map(|&e| resolved_operands(&dfg, e)[1])
                .collect();
            let selected = vec![SimdGroup { elems: param_sw }, SimdGroup { elems: array_sw }];
            let b_sel = model.benefit(idx, &alive, &selected);
            let b_cand = model.benefit(idx, &alive, &[]);
            assert!(b_sel > b_cand, "{b_sel} vs {b_cand}");
            return;
        }
        panic!("no mul candidate found");
    }
}
