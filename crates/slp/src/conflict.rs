//! Structural conflict detection between candidates.
//!
//! Two candidates conflict when they cannot both be realised:
//!
//! * they **share an item** (an operation can live in only one SIMD
//!   group), or
//! * they have a **cyclic dependency**: realising both would create a
//!   cycle between the two SIMD instructions (each group reaches the
//!   other).
//!
//! The paper adds a third, *accuracy* conflict on top of these; that check
//! lives in `slpwlo-core` and is injected through the selection hooks.

use crate::candidate::Round;
use crate::group::group_reaches;
use slpwlo_ir::dfg::Dfg;

/// Enumerates structural conflicts as pairs of candidate indices
/// (`i < j`).
pub fn structural_conflicts(dfg: &Dfg, round: &Round) -> Vec<(usize, usize)> {
    let n = round.candidates.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if conflicts(dfg, round, i, j) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Tests whether candidates `i` and `j` structurally conflict.
pub fn conflicts(dfg: &Dfg, round: &Round, i: usize, j: usize) -> bool {
    let a = round.candidates[i];
    let b = round.candidates[j];
    // Shared item.
    if a.left == b.left || a.left == b.right || a.right == b.left || a.right == b.right {
        return true;
    }
    // Overlapping elements through different items (possible in extension
    // rounds where one node sits in a prior group).
    let ga = round.items[a.left].concat(&round.items[a.right]);
    let gb = round.items[b.left].concat(&round.items[b.right]);
    if ga.overlaps(&gb) {
        return true;
    }
    // Cyclic dependency: both groups reach each other.
    group_reaches(dfg, &ga, &gb) && group_reaches(dfg, &gb, &ga)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Round;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    /// A block crafted so that two candidate groups have a cyclic
    /// dependency:
    ///   m0 = a0 * a1        (mul A)
    ///   s0 = m0 + a2        (add X)
    ///   m1 = s0 * a3        (mul B, depends on add X)
    ///   s1 = m1 + a4        (add Y, depends on mul B)
    /// Candidate {mul A, mul B} and candidate {add X, add Y}:
    /// A -> X -> B -> Y gives A->X and X->B: the mul group reaches the add
    /// group (A->X) and the add group reaches the mul group (X->B), so the
    /// two candidates can never both be SIMD instructions.
    fn cyclic_block() -> Dfg {
        let src = r#"
kernel cy {
    input x range [-1, 1];
    output y;
    array a[8];
    var m0;
    var s0;
    var m1;
    shiftin a <- x;
    m0 = a[0] * a[1];
    s0 = m0 + a[2];
    m1 = s0 * a[3];
    y = m1 + a[4];
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_stmts(&k, &blocks[0].stmts)
    }

    #[test]
    fn detects_cyclic_dependency() {
        let dfg = cyclic_block();
        let round = Round::new(&dfg, &xentium(), &[]);
        // Find the mul-pair and add-pair candidates.
        let mut mul_cand = None;
        let mut add_cand = None;
        for (idx, c) in round.candidates.iter().enumerate() {
            let g = round.items[c.left].concat(&round.items[c.right]);
            match g.kind(&dfg) {
                slpwlo_ir::NodeKind::Bin(slpwlo_ir::BinOp::Mul) => mul_cand = Some(idx),
                slpwlo_ir::NodeKind::Bin(slpwlo_ir::BinOp::Add) => add_cand = Some(idx),
                _ => {}
            }
        }
        // The two muls are dependent (m0 -> s0 -> m1), so the mul pair is
        // not even a candidate; the adds likewise. This block instead
        // verifies that dependent operations never become candidates.
        assert!(
            mul_cand.is_none(),
            "dependent muls must not form a candidate"
        );
        assert!(
            add_cand.is_none(),
            "dependent adds must not form a candidate"
        );
    }

    /// Independent mul pairs but crossed dependencies through adds:
    ///   m0 = a0*a1   m1 = a2*a3   (independent)
    ///   s0 = m0 + a4
    ///   m2 = s0 * a5             (m2 depends on m0)
    ///   m3 = a6 * a7             (independent of everything)
    /// Candidate A = {m0, m3}, candidate B = {m2, m1}:
    /// A reaches B (m0 -> s0 -> m2) and B reaches A? m1/m2 do not reach
    /// m0/m3, so no cycle: A and B only share nothing => compatible.
    /// Candidate C = {m0, m2} is invalid (dependent). Shared-item
    /// conflicts are exercised instead.
    #[test]
    fn shared_item_conflicts() {
        let src = r#"
kernel sh {
    input x range [-1, 1];
    output y;
    array a[8];
    var m0;
    var m1;
    var m2;
    shiftin a <- x;
    m0 = a[0] * a[1];
    m1 = a[2] * a[3];
    m2 = a[4] * a[5];
    y = m0 + m1 + m2;
}
"#;
        let k = parse_kernel(src).unwrap();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_stmts(&k, &blocks[0].stmts);
        let round = Round::new(&dfg, &xentium(), &[]);
        // Three independent muls yield several pair candidates sharing
        // items; all sharing pairs must be conflicts.
        let conf = structural_conflicts(&dfg, &round);
        let mut mul_cands = Vec::new();
        for (idx, c) in round.candidates.iter().enumerate() {
            let g = round.items[c.left].concat(&round.items[c.right]);
            if matches!(
                g.kind(&dfg),
                slpwlo_ir::NodeKind::Bin(slpwlo_ir::BinOp::Mul)
            ) {
                mul_cands.push(idx);
            }
        }
        assert!(
            mul_cands.len() >= 3,
            "three muls give at least three pair orders"
        );
        for (i, &a) in mul_cands.iter().enumerate() {
            for &b in &mul_cands[i + 1..] {
                let ca = round.candidates[a];
                let cb = round.candidates[b];
                let shares = ca.left == cb.left
                    || ca.left == cb.right
                    || ca.right == cb.left
                    || ca.right == cb.right;
                if shares {
                    assert!(
                        conf.contains(&(a.min(b), a.max(b))),
                        "sharing candidates must conflict"
                    );
                }
            }
        }
    }
}
