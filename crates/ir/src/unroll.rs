//! Loop unrolling.
//!
//! The paper exposes superword level parallelism by partially unrolling the
//! innermost loops of FIR and IIR by four and fully unrolling the 3x3
//! convolution. This pass reproduces that preparation: unrolled copies get
//! fresh expression instances (so each copy can carry its own fixed-point
//! format) and fresh loop ids for any nested loops.

use crate::error::IrError;
use crate::kernel::{ExprNode, Kernel, Stmt};
use crate::types::{ExprId, LoopId};

/// Substitution applied to index expressions while cloning:
/// `var := factor * new_var + add` (with `new_var = None` meaning the term
/// is fully evaluated away).
#[derive(Debug, Clone, Copy)]
struct Subst {
    var: LoopId,
    new_var: Option<LoopId>,
    factor: i64,
    add: i64,
}

/// Unrolls the loop identified by `target` by `factor`.
///
/// * `factor >= count` (or `factor == 0`, shorthand for "fully") removes
///   the loop and splices `count` copies of the body in place.
/// * Otherwise the loop becomes `count / factor` iterations of `factor`
///   copies, followed by `count % factor` straight-line remainder copies.
///
/// # Errors
///
/// Returns [`IrError::InvalidUnroll`] if the loop id does not exist.
pub fn unroll(kernel: &mut Kernel, target: LoopId, factor: u32) -> Result<(), IrError> {
    // Detach the body to appease the borrow checker, operate, re-attach.
    let mut body = std::mem::take(&mut kernel.body);
    let found = unroll_in(kernel, &mut body, target, factor);
    kernel.body = body;
    if found {
        kernel.validate()?;
        Ok(())
    } else {
        Err(IrError::InvalidUnroll(format!("loop {target} not found")))
    }
}

/// Fully unrolls every loop whose trip count is at most `max_trip`.
///
/// Convenience used for kernels like the 3x3 convolution where the paper
/// unrolls everything.
pub fn unroll_all_upto(kernel: &mut Kernel, max_trip: u32) -> Result<(), IrError> {
    loop {
        let mut found: Option<LoopId> = None;
        kernel.visit_stmts(&mut |s, _| {
            if found.is_none() {
                if let Stmt::For { var, count, .. } = s {
                    if *count <= max_trip {
                        found = Some(*var);
                    }
                }
            }
        });
        match found {
            Some(l) => unroll(kernel, l, 0)?,
            None => return Ok(()),
        }
    }
}

fn unroll_in(kernel: &mut Kernel, stmts: &mut Vec<Stmt>, target: LoopId, factor: u32) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        let is_target = matches!(&stmts[i], Stmt::For { var, .. } if *var == target);
        if is_target {
            let Stmt::For { var, count, body } = stmts.remove(i) else {
                unreachable!()
            };
            let expanded = expand(kernel, var, count, &body, factor);
            for (k, s) in expanded.into_iter().enumerate() {
                stmts.insert(i + k, s);
            }
            return true;
        }
        if let Stmt::For { body, .. } = &mut stmts[i] {
            let mut inner = std::mem::take(body);
            let found = unroll_in(kernel, &mut inner, target, factor);
            if let Stmt::For { body, .. } = &mut stmts[i] {
                *body = inner;
            }
            if found {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn expand(kernel: &mut Kernel, var: LoopId, count: u32, body: &[Stmt], factor: u32) -> Vec<Stmt> {
    let full = factor == 0 || factor >= count;
    let mut out = Vec::new();
    if full {
        for k in 0..count {
            let subst = Subst {
                var,
                new_var: None,
                factor: 0,
                add: k as i64,
            };
            for s in body {
                out.push(clone_stmt(kernel, s, subst));
            }
        }
        return out;
    }
    let q = count / factor;
    let r = count % factor;
    // Main loop: for v2 in 0..q { body[var := factor*v2 + k] for k in 0..factor }
    let v2 = LoopId(kernel.n_loops);
    kernel.n_loops += 1;
    let mut main_body = Vec::new();
    for k in 0..factor {
        let subst = Subst {
            var,
            new_var: Some(v2),
            factor: factor as i64,
            add: k as i64,
        };
        for s in body {
            main_body.push(clone_stmt(kernel, s, subst));
        }
    }
    out.push(Stmt::For {
        var: v2,
        count: q,
        body: main_body,
    });
    // Remainder: straight-line copies at var := q*factor + k.
    for k in 0..r {
        let subst = Subst {
            var,
            new_var: None,
            factor: 0,
            add: (q * factor + k) as i64,
        };
        for s in body {
            out.push(clone_stmt(kernel, s, subst));
        }
    }
    out
}

fn clone_stmt(kernel: &mut Kernel, s: &Stmt, subst: Subst) -> Stmt {
    match s {
        Stmt::Assign(v, e) => Stmt::Assign(*v, clone_expr(kernel, *e, subst)),
        Stmt::Store(a, ix, e) => Stmt::Store(
            *a,
            ix.substitute(subst.var, subst.new_var, subst.factor, subst.add),
            clone_expr(kernel, *e, subst),
        ),
        Stmt::ShiftIn(a, e) => Stmt::ShiftIn(*a, clone_expr(kernel, *e, subst)),
        Stmt::Output(i, e) => Stmt::Output(*i, clone_expr(kernel, *e, subst)),
        Stmt::For { var, count, body } => {
            // A nested loop in a cloned body needs a fresh induction
            // variable so the copies stay distinguishable.
            let fresh = LoopId(kernel.n_loops);
            kernel.n_loops += 1;
            let inner: Vec<Stmt> = body
                .iter()
                .map(|s| {
                    // First rename the nested induction variable, then apply
                    // the outer substitution.
                    let renamed = rename_loop_in_stmt(s, *var, fresh);
                    clone_stmt(kernel, &renamed, subst)
                })
                .collect();
            Stmt::For {
                var: fresh,
                count: *count,
                body: inner,
            }
        }
    }
}

/// Rewrites index expressions replacing `old` by `new` (coefficient kept).
fn rename_loop_in_stmt(s: &Stmt, old: LoopId, new: LoopId) -> Stmt {
    // Renaming only affects IndexExprs syntactically; expression ids are
    // handled by the caller's clone. We piggyback on `substitute`.
    match s {
        Stmt::Store(a, ix, e) => Stmt::Store(*a, ix.substitute(old, Some(new), 1, 0), *e),
        Stmt::For { var, count, body } => Stmt::For {
            var: *var,
            count: *count,
            body: body
                .iter()
                .map(|s| rename_loop_in_stmt(s, old, new))
                .collect(),
        },
        other => other.clone(),
    }
}

fn clone_expr(kernel: &mut Kernel, e: ExprId, subst: Subst) -> ExprId {
    let node = kernel.exprs[e.index()].clone();
    let cloned = match node {
        ExprNode::Const(v) => ExprNode::Const(v),
        ExprNode::ReadVar(v) => ExprNode::ReadVar(v),
        ExprNode::ReadInput(i) => ExprNode::ReadInput(i),
        ExprNode::LoadParam(p, ix) => ExprNode::LoadParam(
            p,
            ix.substitute(subst.var, subst.new_var, subst.factor, subst.add),
        ),
        ExprNode::LoadArray(a, ix) => ExprNode::LoadArray(
            a,
            ix.substitute(subst.var, subst.new_var, subst.factor, subst.add),
        ),
        ExprNode::Unary(op, a) => {
            let a2 = clone_expr(kernel, a, subst);
            ExprNode::Unary(op, a2)
        }
        ExprNode::Bin(op, a, b) => {
            let a2 = clone_expr(kernel, a, subst);
            let b2 = clone_expr(kernel, b, subst);
            ExprNode::Bin(op, a2, b2)
        }
    };
    let id = ExprId(kernel.exprs.len() as u32);
    kernel.exprs.push(cloned);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::collect_blocks;
    use crate::builder::KernelBuilder;
    use crate::interp::{Executor, FloatSem};
    use crate::types::IndexExpr;

    /// acc = 0; for i in 0..n { acc += c[i]*dl[i] }; y = acc
    fn fir_like(n: u32) -> (Kernel, LoopId) {
        let mut b = KernelBuilder::new("fir_like");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let dl = b.array("dl", n as usize);
        let coeffs: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let c = b.param("c", coeffs);
        let acc = b.var("acc");
        let xv = b.read_input(x);
        b.shift_in(dl, xv);
        let z = b.constf(0.0);
        b.assign(acc, z);
        let i = b.begin_for(n);
        let cv = b.load_param_ix(c, IndexExpr::affine(i, 1, 0));
        let lv = b.load_ix(dl, IndexExpr::affine(i, 1, 0));
        let m = b.mul(cv, lv);
        let av = b.read_var(acc);
        let s = b.add(av, m);
        b.assign(acc, s);
        b.end_for(i);
        let r = b.read_var(acc);
        b.set_output(y, r);
        (b.finish(), i)
    }

    fn run(k: &Kernel, xs: &[f64]) -> Vec<f64> {
        let mut ex = Executor::new(k, FloatSem);
        let inputs = vec![xs.to_vec()];
        let outs = ex.run(&inputs);
        outs[0].clone()
    }

    #[test]
    fn partial_unroll_divisible() {
        let (mut k, l) = fir_like(8);
        let before = run(&k, &[1.0, 0.5, -0.25, 0.0, 0.75]);
        unroll(&mut k, l, 4).unwrap();
        // One For of 2 iterations with 4 copies inside.
        let fors: Vec<_> = k
            .body()
            .iter()
            .filter(|s| matches!(s, Stmt::For { .. }))
            .collect();
        assert_eq!(fors.len(), 1);
        if let Stmt::For { count, body, .. } = fors[0] {
            assert_eq!(*count, 2);
            assert_eq!(body.len(), 4); // 4 copies x 1 stmt (assign acc)
        }
        let after = run(&k, &[1.0, 0.5, -0.25, 0.0, 0.75]);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12, "unrolling must preserve semantics");
        }
    }

    #[test]
    fn partial_unroll_with_remainder() {
        let (mut k, l) = fir_like(10);
        let before = run(&k, &[0.3, -0.6, 0.9]);
        unroll(&mut k, l, 4).unwrap();
        let after = run(&k, &[0.3, -0.6, 0.9]);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12);
        }
        // q=2 loop + r=2 remainder statements: blocks = head, loop body, tail.
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1].trip(), 2);
    }

    #[test]
    fn full_unroll_removes_loop() {
        let (mut k, l) = fir_like(6);
        let before = run(&k, &[1.0, -1.0]);
        unroll(&mut k, l, 0).unwrap();
        assert!(k.body().iter().all(|s| !matches!(s, Stmt::For { .. })));
        let after = run(&k, &[1.0, -1.0]);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-12);
        }
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn unknown_loop_errors() {
        let (mut k, _) = fir_like(4);
        assert!(matches!(
            unroll(&mut k, LoopId(99), 2),
            Err(IrError::InvalidUnroll(_))
        ));
    }

    #[test]
    fn unroll_all_upto_limit() {
        let (mut k, _) = fir_like(6);
        unroll_all_upto(&mut k, 8).unwrap();
        assert!(k.body().iter().all(|s| !matches!(s, Stmt::For { .. })));
    }

    #[test]
    fn index_expressions_are_rewritten() {
        let (mut k, l) = fir_like(8);
        unroll(&mut k, l, 4).unwrap();
        // Collect all LoadArray offsets in the main loop body: should be
        // {0,1,2,3} with coefficient 4 on the new loop var.
        let mut offsets = Vec::new();
        k.visit_stmts(&mut |s, _| {
            if let Stmt::Assign(_, e) = s {
                collect_offsets(&k, *e, &mut offsets);
            }
        });
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets, vec![0, 1, 2, 3]);

        fn collect_offsets(k: &Kernel, e: ExprId, out: &mut Vec<i64>) {
            match k.expr(e) {
                ExprNode::LoadArray(_, ix) => {
                    if let Some(&(_, c)) = ix.terms().first() {
                        assert_eq!(c, 4, "unrolled stride must be the factor");
                        out.push(ix.offset());
                    }
                }
                n => {
                    for op in n.operands().collect::<Vec<_>>() {
                        collect_offsets(k, op, out);
                    }
                }
            }
        }
    }
}
