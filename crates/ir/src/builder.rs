//! Programmatic construction of [`Kernel`]s.

use crate::error::IrError;
use crate::kernel::{Array, ExprNode, Input, Kernel, Output, Param, Stmt, Var};
use crate::types::{ArrayId, BinOp, ExprId, IndexExpr, InputId, LoopId, ParamId, UnOp, VarId};

/// Incremental builder for [`Kernel`]s.
///
/// Expressions are created first (returning [`ExprId`]s) and then consumed
/// by exactly one statement; loops are opened with [`begin_for`] and closed
/// with [`end_for`].
///
/// [`begin_for`]: KernelBuilder::begin_for
/// [`end_for`]: KernelBuilder::end_for
///
/// # Example
///
/// ```
/// use slpwlo_ir::builder::KernelBuilder;
///
/// let mut b = KernelBuilder::new("acc4");
/// let x = b.input("x", -1.0, 1.0);
/// let y = b.output("y");
/// let acc = b.var("acc");
/// let zero = b.constf(0.0);
/// b.assign(acc, zero);
/// let i = b.begin_for(4);
/// let a = b.read_var(acc);
/// let xv = b.read_input(x);
/// let s = b.add(a, xv);
/// b.assign(acc, s);
/// b.end_for(i);
/// let r = b.read_var(acc);
/// b.set_output(y, r);
/// let kernel = b.finish();
/// assert!(kernel.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    kernel: Kernel,
    /// Stack of open loops: (loop id, trip count, statements so far).
    open: Vec<(LoopId, u32, Vec<Stmt>)>,
}

impl KernelBuilder {
    /// Starts building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            kernel: Kernel {
                name: name.into(),
                inputs: Vec::new(),
                outputs: Vec::new(),
                params: Vec::new(),
                arrays: Vec::new(),
                vars: Vec::new(),
                exprs: Vec::new(),
                body: Vec::new(),
                n_loops: 0,
            },
            open: Vec::new(),
        }
    }

    // ---- declarations ----------------------------------------------------

    /// Declares a per-activation input with value range `[lo, hi]`.
    ///
    /// Bounds are *not* checked here: malformed ranges (non-finite, or
    /// `lo > hi`) are caught by [`Kernel::validate`] — i.e. by
    /// [`KernelBuilder::try_finish`] as [`IrError::InvalidRange`] — so
    /// programmatically-built kernels get a typed error at the same
    /// boundary parsed ones do instead of a delayed panic inside range
    /// analysis.
    pub fn input(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> InputId {
        let id = InputId(self.kernel.inputs.len() as u32);
        self.kernel.inputs.push(Input {
            name: name.into(),
            lo,
            hi,
        });
        id
    }

    /// Declares a per-activation output.
    pub fn output(&mut self, name: impl Into<String>) -> usize {
        let id = self.kernel.outputs.len();
        self.kernel.outputs.push(Output { name: name.into() });
        id
    }

    /// Declares a constant parameter table.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty; see [`KernelBuilder::try_param`] for
    /// the fallible variant.
    pub fn param(&mut self, name: impl Into<String>, values: Vec<f64>) -> ParamId {
        self.try_param(name, values)
            .expect("parameter table must not be empty")
    }

    /// Declares a constant parameter table, rejecting empty tables with a
    /// structured error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyTable`] if `values` is empty.
    pub fn try_param(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> Result<ParamId, IrError> {
        let name = name.into();
        if values.is_empty() {
            return Err(IrError::EmptyTable {
                kind: "param",
                name,
            });
        }
        let id = ParamId(self.kernel.params.len() as u32);
        self.kernel.params.push(Param { name, values });
        Ok(id)
    }

    /// Declares a zero-initialised state array of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero; see [`KernelBuilder::try_array`] for the
    /// fallible variant.
    pub fn array(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.try_array(name, len)
            .expect("state array must have at least one element")
    }

    /// Declares a zero-initialised state array, rejecting zero-length
    /// arrays with a structured error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyTable`] if `len` is zero.
    pub fn try_array(&mut self, name: impl Into<String>, len: usize) -> Result<ArrayId, IrError> {
        let name = name.into();
        if len == 0 {
            return Err(IrError::EmptyTable {
                kind: "array",
                name,
            });
        }
        let id = ArrayId(self.kernel.arrays.len() as u32);
        self.kernel.arrays.push(Array { name, len });
        Ok(id)
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.kernel.vars.len() as u32);
        self.kernel.vars.push(Var { name: name.into() });
        id
    }

    // ---- expressions -----------------------------------------------------

    fn push_expr(&mut self, node: ExprNode) -> ExprId {
        let id = ExprId(self.kernel.exprs.len() as u32);
        self.kernel.exprs.push(node);
        id
    }

    /// A floating-point constant.
    pub fn constf(&mut self, v: f64) -> ExprId {
        self.push_expr(ExprNode::Const(v))
    }

    /// Reads a scalar variable.
    pub fn read_var(&mut self, v: VarId) -> ExprId {
        self.push_expr(ExprNode::ReadVar(v))
    }

    /// Reads an input value.
    pub fn read_input(&mut self, i: InputId) -> ExprId {
        self.push_expr(ExprNode::ReadInput(i))
    }

    /// Loads a parameter at a constant index.
    pub fn load_param(&mut self, p: ParamId, idx: i64) -> ExprId {
        self.push_expr(ExprNode::LoadParam(p, IndexExpr::constant(idx)))
    }

    /// Loads a parameter at an affine index.
    pub fn load_param_ix(&mut self, p: ParamId, idx: IndexExpr) -> ExprId {
        self.push_expr(ExprNode::LoadParam(p, idx))
    }

    /// Loads a state-array element at a constant index.
    pub fn load(&mut self, a: ArrayId, idx: i64) -> ExprId {
        self.push_expr(ExprNode::LoadArray(a, IndexExpr::constant(idx)))
    }

    /// Loads a state-array element at an affine index.
    pub fn load_ix(&mut self, a: ArrayId, idx: IndexExpr) -> ExprId {
        self.push_expr(ExprNode::LoadArray(a, idx))
    }

    /// `a + b`.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push_expr(ExprNode::Bin(BinOp::Add, a, b))
    }

    /// `a - b`.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push_expr(ExprNode::Bin(BinOp::Sub, a, b))
    }

    /// `a * b`.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.push_expr(ExprNode::Bin(BinOp::Mul, a, b))
    }

    /// `-a`.
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        self.push_expr(ExprNode::Unary(UnOp::Neg, a))
    }

    // ---- statements ------------------------------------------------------

    fn push_stmt(&mut self, s: Stmt) {
        match self.open.last_mut() {
            Some((_, _, body)) => body.push(s),
            None => self.kernel.body.push(s),
        }
    }

    /// Emits `var = expr`.
    pub fn assign(&mut self, var: VarId, expr: ExprId) {
        self.push_stmt(Stmt::Assign(var, expr));
    }

    /// Emits `array[idx] = expr` with a constant index.
    pub fn store(&mut self, a: ArrayId, idx: i64, expr: ExprId) {
        self.push_stmt(Stmt::Store(a, IndexExpr::constant(idx), expr));
    }

    /// Emits `array[idx] = expr` with an affine index.
    pub fn store_ix(&mut self, a: ArrayId, idx: IndexExpr, expr: ExprId) {
        self.push_stmt(Stmt::Store(a, idx, expr));
    }

    /// Emits a delay-line push (see [`Stmt::ShiftIn`]).
    pub fn shift_in(&mut self, a: ArrayId, expr: ExprId) {
        self.push_stmt(Stmt::ShiftIn(a, expr));
    }

    /// Emits the value of output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not name a declared output; see
    /// [`KernelBuilder::try_set_output`] for the fallible variant.
    pub fn set_output(&mut self, index: usize, expr: ExprId) {
        self.try_set_output(index, expr)
            .expect("output index out of range");
    }

    /// Emits the value of output `index`, rejecting out-of-range indices
    /// with a structured error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::OutputOutOfRange`] if `index` does not name a
    /// declared output.
    pub fn try_set_output(&mut self, index: usize, expr: ExprId) -> Result<(), IrError> {
        if index >= self.kernel.outputs.len() {
            return Err(IrError::OutputOutOfRange {
                index,
                count: self.kernel.outputs.len(),
            });
        }
        self.push_stmt(Stmt::Output(index, expr));
        Ok(())
    }

    /// Opens a loop `for i in 0..count`; returns the induction variable id
    /// for use in [`IndexExpr`]s. Must be closed with [`end_for`].
    ///
    /// [`end_for`]: KernelBuilder::end_for
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; see [`KernelBuilder::try_begin_for`] for
    /// the fallible variant.
    pub fn begin_for(&mut self, count: u32) -> LoopId {
        self.try_begin_for(count)
            .expect("loop trip count must be positive")
    }

    /// Opens a loop, rejecting zero trip counts with a structured error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroTripLoop`] if `count` is zero.
    pub fn try_begin_for(&mut self, count: u32) -> Result<LoopId, IrError> {
        if count == 0 {
            return Err(IrError::ZeroTripLoop);
        }
        let id = LoopId(self.kernel.n_loops);
        self.kernel.n_loops += 1;
        self.open.push((id, count, Vec::new()));
        Ok(id)
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the innermost open loop (loops must nest);
    /// see [`KernelBuilder::try_end_for`] for the fallible variant.
    pub fn end_for(&mut self, id: LoopId) {
        self.try_end_for(id)
            .expect("end_for must close the innermost open loop");
    }

    /// Closes the innermost open loop, rejecting crossed or spurious
    /// closes with a structured error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::LoopNesting`] if no loop is open or `id` is not
    /// the innermost open loop.
    pub fn try_end_for(&mut self, id: LoopId) -> Result<(), IrError> {
        match self.open.last() {
            None => {
                return Err(IrError::LoopNesting(format!(
                    "end_for({id}) with no loop open"
                )))
            }
            Some(&(innermost, _, _)) if innermost != id => {
                return Err(IrError::LoopNesting(format!(
                    "end_for({id}) while {innermost} is the innermost open loop"
                )))
            }
            Some(_) => {}
        }
        let (var, count, body) = self.open.pop().expect("checked above");
        self.push_stmt(Stmt::For { var, count, body });
        Ok(())
    }

    /// Finalises the kernel.
    ///
    /// # Panics
    ///
    /// Panics if loops are left open or if arena invariants are violated
    /// (an expression used twice or not at all is reported by
    /// [`Kernel::validate`]; unused expressions are tolerated, double uses
    /// are not).
    pub fn finish(self) -> Kernel {
        self.try_finish().expect("kernel failed validation")
    }

    /// Finalises the kernel, returning an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] if loops are left open or if an expression node
    /// is referenced from more than one position.
    pub fn try_finish(self) -> Result<Kernel, IrError> {
        if let Some((id, _, _)) = self.open.last() {
            return Err(IrError::LoopNesting(format!("loop {id} open at finish")));
        }
        self.kernel.validate()?;
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_loops() {
        let mut b = KernelBuilder::new("nest");
        let y = b.output("y");
        let a = b.array("buf", 16);
        let i = b.begin_for(4);
        let j = b.begin_for(4);
        let mut ix = IndexExpr::affine(i, 4, 0);
        ix.add_term(j, 1);
        let v = b.load_ix(a, ix);
        let c = b.constf(2.0);
        let m = b.mul(v, c);
        b.store(a, 0, m);
        b.end_for(j);
        b.end_for(i);
        let l = b.load(a, 0);
        b.set_output(y, l);
        let k = b.finish();
        assert_eq!(k.loop_count(), 2);
        assert!(matches!(k.body()[0], Stmt::For { count: 4, .. }));
    }

    #[test]
    fn double_use_is_rejected() {
        let mut b = KernelBuilder::new("bad");
        let y = b.output("y");
        let c = b.constf(1.0);
        // `c` used twice: once by add (twice!), invalid.
        let s = b.add(c, c);
        b.set_output(y, s);
        assert!(matches!(b.try_finish(), Err(IrError::ExprReused(_))));
    }

    #[test]
    fn unclosed_loop_is_rejected() {
        let mut b = KernelBuilder::new("bad");
        b.begin_for(2);
        assert!(b.try_finish().is_err());
    }

    #[test]
    #[should_panic(expected = "innermost")]
    fn crossed_loops_panic() {
        let mut b = KernelBuilder::new("bad");
        let i = b.begin_for(2);
        let _j = b.begin_for(2);
        b.end_for(i);
    }
}
