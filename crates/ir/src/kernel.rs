//! The kernel IR: declarations, expression arena and statement tree.
//!
//! A [`Kernel`] describes the computation performed for **one activation**
//! (one input sample for a filter, one output pixel for a streaming
//! convolution). Running a kernel over a workload means executing its body
//! once per activation while state arrays persist across activations — this
//! is how delay lines (`x[n-k]`) and feedback (`y[n-k]`) are expressed.

use crate::types::{ArrayId, BinOp, ExprId, IndexExpr, InputId, LoopId, ParamId, UnOp, VarId};

/// A per-activation scalar input with its user-annotated value range.
///
/// The range plays the role of the paper's pragma annotations and seeds
/// dynamic-range analysis (interval propagation / IWL determination).
#[derive(Debug, Clone, PartialEq)]
pub struct Input {
    /// Source-level name.
    pub name: String,
    /// Lower bound of the input values.
    pub lo: f64,
    /// Upper bound of the input values.
    pub hi: f64,
}

/// A per-activation scalar output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Source-level name.
    pub name: String,
}

/// A constant parameter table (filter coefficients, convolution masks).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Source-level name.
    pub name: String,
    /// The constant values; the table length is `values.len()`.
    pub values: Vec<f64>,
}

/// A state array that persists across activations (delay line, line buffer).
///
/// Arrays are zero-initialised before the first activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Array {
    /// Source-level name.
    pub name: String,
    /// Number of elements.
    pub len: usize,
}

/// A scalar variable (a "register" in the source program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Var {
    /// Source-level name.
    pub name: String,
}

/// One node of the expression arena.
///
/// Each node is a distinct *operation instance*; loop unrolling clones nodes
/// under fresh [`ExprId`]s so that every instance can carry its own
/// fixed-point format downstream.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprNode {
    /// A floating-point literal.
    Const(f64),
    /// Reads the current value of a scalar variable.
    ReadVar(VarId),
    /// Reads the activation's value of an input.
    ReadInput(InputId),
    /// Loads a constant from a parameter table.
    LoadParam(ParamId, IndexExpr),
    /// Loads an element of a state array.
    LoadArray(ArrayId, IndexExpr),
    /// Unary operation.
    Unary(UnOp, ExprId),
    /// Binary operation.
    Bin(BinOp, ExprId, ExprId),
}

impl ExprNode {
    /// Ids of the operand expressions, in evaluation order.
    pub fn operands(&self) -> impl Iterator<Item = ExprId> + '_ {
        let (a, b) = match *self {
            ExprNode::Unary(_, a) => (Some(a), None),
            ExprNode::Bin(_, a, b) => (Some(a), Some(b)),
            _ => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Returns `true` for leaf nodes (no expression operands).
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            ExprNode::Const(_)
                | ExprNode::ReadVar(_)
                | ExprNode::ReadInput(_)
                | ExprNode::LoadParam(..)
                | ExprNode::LoadArray(..)
        )
    }
}

/// A statement of the kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = expr`.
    Assign(VarId, ExprId),
    /// `array[index] = expr`.
    Store(ArrayId, IndexExpr, ExprId),
    /// Pushes a new value into a delay line: conceptually
    /// `for k in (1..len).rev() { a[k] = a[k-1] }; a[0] = expr`.
    ///
    /// Real implementations use a circular buffer, so lowering charges one
    /// store plus an index update rather than `len` moves.
    ShiftIn(ArrayId, ExprId),
    /// A counted loop `for var in 0..count { body }`.
    For {
        /// The induction variable.
        var: LoopId,
        /// Trip count (compile-time constant, as in the paper's kernels).
        count: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Emits the activation's value for output `index`.
    Output(usize, ExprId),
}

/// A numeric value position inside a [`Kernel`] that [`Kernel::edit_values`]
/// can rewrite without changing the kernel's structure.
///
/// Structure-preserving edits keep the expression arena, the statement tree
/// and every declaration's shape identical, so incremental analyses (e.g.
/// journal-replay range analysis keyed on a [`crate::ConeIndex`]) remain
/// applicable across the edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSite {
    /// The literal of a [`ExprNode::Const`] node.
    Const(ExprId),
    /// One entry of a parameter table ([`Param::values`]`[i]`).
    Param(ParamId, usize),
    /// The lower bound of an input's declared range.
    InputLo(InputId),
    /// The upper bound of an input's declared range.
    InputHi(InputId),
}

/// A complete kernel: declarations plus the per-activation body.
///
/// Construct kernels through [`crate::builder::KernelBuilder`] or the DSL
/// parser; the raw fields stay crate-private to preserve arena invariants
/// (every [`ExprId`] used by exactly one statement tree position).
#[derive(Debug, Clone)]
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) inputs: Vec<Input>,
    pub(crate) outputs: Vec<Output>,
    pub(crate) params: Vec<Param>,
    pub(crate) arrays: Vec<Array>,
    pub(crate) vars: Vec<Var>,
    pub(crate) exprs: Vec<ExprNode>,
    pub(crate) body: Vec<Stmt>,
    pub(crate) n_loops: u32,
}

impl Kernel {
    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared inputs.
    pub fn inputs(&self) -> &[Input] {
        &self.inputs
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Declared parameter tables.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Declared state arrays.
    pub fn arrays(&self) -> &[Array] {
        &self.arrays
    }

    /// Declared scalar variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The top-level statement sequence.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Number of loops ever created in this kernel (unrolling included).
    pub fn loop_count(&self) -> u32 {
        self.n_loops
    }

    /// Number of expression nodes in the arena.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Looks up an expression node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this kernel's arena.
    pub fn expr(&self, id: ExprId) -> &ExprNode {
        &self.exprs[id.index()]
    }

    /// Iterates over all `(id, node)` pairs of the arena.
    pub fn exprs(&self) -> impl Iterator<Item = (ExprId, &ExprNode)> {
        self.exprs
            .iter()
            .enumerate()
            .map(|(i, n)| (ExprId(i as u32), n))
    }

    /// Resolves a parameter value, wrapping the index into range.
    ///
    /// Out-of-range accesses wrap modulo the table length; this mirrors the
    /// circular-buffer semantics used for state arrays and keeps analysis
    /// passes total.
    pub fn param_value(&self, id: ParamId, idx: i64) -> f64 {
        let p = &self.params[id.index()];
        let len = p.values.len() as i64;
        debug_assert!(len > 0, "empty parameter table {}", p.name);
        p.values[(idx.rem_euclid(len)) as usize]
    }

    /// Walks every statement (depth-first), invoking `f` with the loop
    /// nesting stack active at that statement.
    #[allow(clippy::type_complexity)]
    pub fn visit_stmts<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt, &[(LoopId, u32)])) {
        fn go<'a>(
            stmts: &'a [Stmt],
            stack: &mut Vec<(LoopId, u32)>,
            f: &mut dyn FnMut(&'a Stmt, &[(LoopId, u32)]),
        ) {
            for s in stmts {
                f(s, stack);
                if let Stmt::For { var, count, body } = s {
                    stack.push((*var, *count));
                    go(body, stack, f);
                    stack.pop();
                }
            }
        }
        go(&self.body, &mut Vec::new(), f);
    }

    /// Total number of expression-node *executions* per activation.
    ///
    /// This is the static node count weighted by enclosing trip counts; it
    /// is used for basic-block prioritisation.
    pub fn executions_per_activation(&self) -> u64 {
        let mut total = 0u64;
        self.visit_stmts(&mut |s, stack| {
            let trips: u64 = stack.iter().map(|&(_, c)| c as u64).product();
            let root = match s {
                Stmt::Assign(_, e)
                | Stmt::Store(_, _, e)
                | Stmt::ShiftIn(_, e)
                | Stmt::Output(_, e) => Some(*e),
                Stmt::For { .. } => None,
            };
            if let Some(root) = root {
                total += trips * self.expr_tree_size(root) as u64;
            }
        });
        total
    }

    /// Number of nodes in the expression tree rooted at `root`.
    pub fn expr_tree_size(&self, root: ExprId) -> usize {
        let mut n = 1;
        for op in self.expr(root).operands() {
            n += self.expr_tree_size(op);
        }
        n
    }

    /// Returns a copy of this kernel with every numeric value rewritten
    /// through `f`.
    ///
    /// `f` receives each [`ValueSite`] (constant literals, parameter-table
    /// entries, input range bounds) with its current value and returns the
    /// new value; returning the argument unchanged leaves that site alone.
    /// The arena shape, statement tree and declaration layout are untouched,
    /// so [`crate::ConeIndex`]es built for `self` stay valid for the result
    /// and incremental analyses can replay across the edit (see
    /// `changed_exprs` in the fixed-point crate).
    pub fn edit_values(&self, mut f: impl FnMut(ValueSite, f64) -> f64) -> Kernel {
        let mut k = self.clone();
        for (i, n) in k.exprs.iter_mut().enumerate() {
            if let ExprNode::Const(v) = n {
                *v = f(ValueSite::Const(ExprId(i as u32)), *v);
            }
        }
        for (p, param) in k.params.iter_mut().enumerate() {
            for (i, v) in param.values.iter_mut().enumerate() {
                *v = f(ValueSite::Param(ParamId(p as u32), i), *v);
            }
        }
        for (i, input) in k.inputs.iter_mut().enumerate() {
            input.lo = f(ValueSite::InputLo(InputId(i as u32)), input.lo);
            input.hi = f(ValueSite::InputHi(InputId(i as u32)), input.hi);
        }
        k
    }

    /// Validates arena invariants; used by tests and after transformations.
    ///
    /// Checks that every input's declared value range is usable (finite,
    /// `lo <= hi`), that every declared output is assigned somewhere in
    /// the body, that every expression id referenced by the statement
    /// tree is in-bounds, and that no expression node is used as an
    /// operand or statement root more than once (single-use arena
    /// discipline).
    pub fn validate(&self) -> Result<(), crate::error::IrError> {
        use crate::error::IrError;
        for input in &self.inputs {
            if !input.lo.is_finite() || !input.hi.is_finite() || input.lo > input.hi {
                return Err(IrError::InvalidRange {
                    input: input.name.clone(),
                    range: format!("[{}, {}]", input.lo, input.hi),
                });
            }
        }
        let mut output_set = vec![false; self.outputs.len()];
        self.visit_stmts(&mut |s, _| {
            if let Stmt::Output(idx, _) = s {
                if let Some(slot) = output_set.get_mut(*idx) {
                    *slot = true;
                }
            }
        });
        if let Some(missing) = output_set.iter().position(|&set| !set) {
            return Err(IrError::OutputUnset(self.outputs[missing].name.clone()));
        }
        let mut uses = vec![0u32; self.exprs.len()];
        let mut mark = |id: ExprId| -> Result<(), IrError> {
            let slot = uses.get_mut(id.index()).ok_or(IrError::InvalidExpr(id.0))?;
            *slot += 1;
            if *slot > 1 {
                return Err(IrError::ExprReused(id.0));
            }
            Ok(())
        };
        for (id, node) in self.exprs.iter().enumerate() {
            for op in node.operands() {
                if op.index() >= self.exprs.len() {
                    return Err(IrError::InvalidExpr(op.0));
                }
                if op.index() >= id {
                    return Err(IrError::ExprCycle(op.0));
                }
                mark(op)?;
            }
        }
        let mut roots = Vec::new();
        self.visit_stmts(&mut |s, _| {
            if let Stmt::Assign(_, e)
            | Stmt::Store(_, _, e)
            | Stmt::ShiftIn(_, e)
            | Stmt::Output(_, e) = s
            {
                roots.push(*e);
            }
        });
        for r in roots {
            mark(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn tiny() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let xv = b.read_input(x);
        let c = b.constf(0.5);
        let m = b.mul(c, xv);
        b.set_output(y, m);
        b.finish()
    }

    #[test]
    fn accessors() {
        let k = tiny();
        assert_eq!(k.name(), "k");
        assert_eq!(k.inputs().len(), 1);
        assert_eq!(k.outputs().len(), 1);
        assert_eq!(k.expr_count(), 3);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn executions_per_activation_counts_trips() {
        let mut b = KernelBuilder::new("k");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let acc = b.var("acc");
        let z = b.constf(0.0);
        b.assign(acc, z);
        let i = b.begin_for(8);
        let a = b.read_var(acc);
        let xv = b.read_input(x);
        let s = b.add(a, xv);
        b.assign(acc, s);
        b.end_for(i);
        let fin = b.read_var(acc);
        b.set_output(y, fin);
        let k = b.finish();
        // Outside the loop: const(1) + read_var(1) = 2 nodes;
        // inside: (read_var + read_input + add) * 8 = 24.
        assert_eq!(k.executions_per_activation(), 26);
    }

    #[test]
    fn param_value_wraps() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("c", vec![1.0, 2.0, 3.0]);
        let y = b.output("y");
        let l = b.load_param(p, 0);
        b.set_output(y, l);
        let k = b.finish();
        assert_eq!(k.param_value(p, 0), 1.0);
        assert_eq!(k.param_value(p, 4), 2.0);
        assert_eq!(k.param_value(p, -1), 3.0);
    }

    #[test]
    fn expr_node_operands() {
        let k = tiny();
        let (mul_id, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)))
            .unwrap();
        assert_eq!(k.expr(mul_id).operands().count(), 2);
        assert!(!k.expr(mul_id).is_leaf());
        assert!(k.expr(ExprId(0)).is_leaf());
    }
}
