//! Identifier newtypes and small value types shared across the IR.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this identifier.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a scalar variable declared in a [`crate::Kernel`].
    VarId,
    "v"
);
id_type!(
    /// Identifies a counted loop; loop variables are referenced by this id
    /// inside [`IndexExpr`].
    LoopId,
    "i"
);
id_type!(
    /// Identifies a per-activation input of a kernel.
    InputId,
    "in"
);
id_type!(
    /// Identifies a per-activation output of a kernel.
    OutputId,
    "out"
);
id_type!(
    /// Identifies a state array (delay line, line buffer) of a kernel.
    ArrayId,
    "a"
);
id_type!(
    /// Identifies a constant parameter table (e.g. filter coefficients).
    ParamId,
    "p"
);
id_type!(
    /// Identifies an expression node in a kernel's expression arena.
    ///
    /// Every `ExprId` denotes a distinct *operation instance*: unrolling a
    /// loop clones expressions under fresh ids, so ids map one-to-one onto
    /// the fixed-point specification "nodes" of the paper.
    ExprId,
    "e"
);

/// Binary operation kinds available in source kernels.
///
/// Scalings (shifts), packs and conversions do not appear at this level;
/// they are introduced during lowering to the machine program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl BinOp {
    /// Short lowercase mnemonic (`"add"`, `"sub"`, `"mul"`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
        }
    }

    /// Infix symbol used by the DSL and pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        }
    }

    /// Returns `true` for operations that commute (`a op b == b op a`).
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operation kinds available in source kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
        }
    }
}

/// An affine index expression `sum(coeff_k * loop_k) + offset`.
///
/// Affine indices are what make memory-adjacency reasoning (and therefore
/// vector load/store formation) decidable: two loads from the same array are
/// contiguous iff their `IndexExpr`s differ by a constant offset of one.
///
/// # Example
///
/// ```
/// use slpwlo_ir::types::{IndexExpr, LoopId};
///
/// let i = LoopId(0);
/// let a = IndexExpr::affine(i, 4, 1); // 4*i + 1
/// let b = IndexExpr::affine(i, 4, 2); // 4*i + 2
/// assert_eq!(a.constant_distance(&b), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IndexExpr {
    /// `(loop, coefficient)` terms; kept sorted by loop id, no zero
    /// coefficients and no duplicate loops.
    terms: Vec<(LoopId, i64)>,
    /// Constant offset.
    offset: i64,
}

impl IndexExpr {
    /// A constant index.
    pub fn constant(offset: i64) -> Self {
        IndexExpr {
            terms: Vec::new(),
            offset,
        }
    }

    /// The single-term affine index `coeff * var + offset`.
    pub fn affine(var: LoopId, coeff: i64, offset: i64) -> Self {
        let mut e = IndexExpr::constant(offset);
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff * var` to the expression, merging with an existing term.
    pub fn add_term(&mut self, var: LoopId, coeff: i64) {
        if coeff == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(pos) => {
                self.terms[pos].1 += coeff;
                if self.terms[pos].1 == 0 {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (var, coeff)),
        }
    }

    /// Adds a constant to the expression.
    pub fn add_offset(&mut self, delta: i64) {
        self.offset += delta;
    }

    /// The constant offset part.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// The affine terms, sorted by loop id.
    pub fn terms(&self) -> &[(LoopId, i64)] {
        &self.terms
    }

    /// Returns `Some(offset)` when the expression is a plain constant.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.offset)
        } else {
            None
        }
    }

    /// Returns `true` if the expression references `var`.
    pub fn uses(&self, var: LoopId) -> bool {
        self.terms.iter().any(|&(v, _)| v == var)
    }

    /// Substitutes `var := factor * var' + add` (used by loop unrolling,
    /// where the original induction variable `i` becomes `factor*i' + k`).
    pub fn substitute(&self, var: LoopId, new_var: Option<LoopId>, factor: i64, add: i64) -> Self {
        let mut out = IndexExpr::constant(self.offset);
        for &(v, c) in &self.terms {
            if v == var {
                if let Some(nv) = new_var {
                    out.add_term(nv, c * factor);
                }
                out.add_offset(c * add);
            } else {
                out.add_term(v, c);
            }
        }
        out
    }

    /// Evaluates the expression under a loop-variable environment.
    ///
    /// `env` maps a loop id to its current trip value; loops absent from the
    /// environment evaluate as zero.
    pub fn eval(&self, env: &dyn Fn(LoopId) -> i64) -> i64 {
        let mut v = self.offset;
        for &(var, c) in &self.terms {
            v += c * env(var);
        }
        v
    }

    /// Distance `other - self` when both expressions share identical affine
    /// terms, i.e. when the distance is a compile-time constant.
    pub fn constant_distance(&self, other: &IndexExpr) -> Option<i64> {
        if self.terms == other.terms {
            Some(other.offset - self.offset)
        } else {
            None
        }
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(var, c) in &self.terms {
            if first {
                if c == 1 {
                    write!(f, "{var}")?;
                } else {
                    write!(f, "{c}*{var}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {var}")?;
                } else {
                    write!(f, " + {c}*{var}")?;
                }
            } else if c == -1 {
                write!(f, " - {var}")?;
            } else {
                write!(f, " - {}*{var}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.offset)?;
        } else if self.offset > 0 {
            write!(f, " + {}", self.offset)?;
        } else if self.offset < 0 {
            write!(f, " - {}", -self.offset)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_expr_constant_roundtrip() {
        let e = IndexExpr::constant(7);
        assert_eq!(e.as_constant(), Some(7));
        assert_eq!(e.eval(&|_| 0), 7);
        assert_eq!(e.to_string(), "7");
    }

    #[test]
    fn index_expr_affine_eval() {
        let i = LoopId(0);
        let e = IndexExpr::affine(i, 4, 3);
        assert_eq!(e.as_constant(), None);
        assert_eq!(e.eval(&|v| if v == i { 5 } else { 0 }), 23);
        assert!(e.uses(i));
        assert!(!e.uses(LoopId(1)));
    }

    #[test]
    fn index_expr_merges_terms() {
        let i = LoopId(0);
        let mut e = IndexExpr::affine(i, 4, 0);
        e.add_term(i, -4);
        assert_eq!(e.as_constant(), Some(0));
    }

    #[test]
    fn index_expr_distance() {
        let i = LoopId(0);
        let a = IndexExpr::affine(i, 4, 0);
        let b = IndexExpr::affine(i, 4, 1);
        let c = IndexExpr::affine(i, 2, 1);
        assert_eq!(a.constant_distance(&b), Some(1));
        assert_eq!(b.constant_distance(&a), Some(-1));
        assert_eq!(a.constant_distance(&c), None);
    }

    #[test]
    fn index_expr_substitution_unroll() {
        // i := 4*i' + 2 applied to [4*i + 1] gives [16*i' + 9].
        let i = LoopId(0);
        let i2 = LoopId(1);
        let e = IndexExpr::affine(i, 4, 1);
        let s = e.substitute(i, Some(i2), 4, 2);
        assert_eq!(s.terms(), &[(i2, 16)]);
        assert_eq!(s.offset(), 9);
        // Full unroll: i := 3 (no replacement variable).
        let s = e.substitute(i, None, 0, 3);
        assert_eq!(s.as_constant(), Some(13));
    }

    #[test]
    fn binop_properties() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert_eq!(BinOp::Mul.mnemonic(), "mul");
        assert_eq!(format!("{}", BinOp::Sub), "-");
    }

    #[test]
    fn display_ids() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(ExprId(12).to_string(), "e12");
        assert_eq!(LoopId(0).to_string(), "i0");
    }

    #[test]
    fn display_index_expr_signs() {
        let i = LoopId(0);
        let j = LoopId(1);
        let mut e = IndexExpr::affine(i, 1, -2);
        e.add_term(j, -3);
        assert_eq!(e.to_string(), "i0 - 3*i1 - 2");
    }
}
