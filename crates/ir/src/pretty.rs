//! Human-readable rendering of kernels (round-trips through the DSL
//! grammar accepted by [`crate::parser`]).

use crate::kernel::{ExprNode, Kernel, Stmt};
use crate::types::ExprId;
use std::fmt::Write as _;

/// Renders a kernel in the textual DSL syntax.
pub fn kernel_to_string(k: &Kernel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "kernel {} {{", k.name());
    for i in k.inputs() {
        let _ = writeln!(s, "    input {} range [{}, {}];", i.name, i.lo, i.hi);
    }
    for o in k.outputs() {
        let _ = writeln!(s, "    output {};", o.name);
    }
    for p in k.params() {
        let vals: Vec<String> = p.values.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(
            s,
            "    param {}[{}] = {{ {} }};",
            p.name,
            p.values.len(),
            vals.join(", ")
        );
    }
    for a in k.arrays() {
        let _ = writeln!(s, "    array {}[{}];", a.name, a.len);
    }
    for v in k.vars() {
        let _ = writeln!(s, "    var {};", v.name);
    }
    write_stmts(&mut s, k, k.body(), 1);
    s.push_str("}\n");
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("    ");
    }
}

fn write_stmts(s: &mut String, k: &Kernel, stmts: &[Stmt], level: usize) {
    for st in stmts {
        indent(s, level);
        match st {
            Stmt::Assign(v, e) => {
                let _ = writeln!(
                    s,
                    "{} = {};",
                    k.vars()[v.index()].name,
                    expr_to_string(k, *e)
                );
            }
            Stmt::Store(a, ix, e) => {
                let _ = writeln!(
                    s,
                    "{}[{}] = {};",
                    k.arrays()[a.index()].name,
                    ix,
                    expr_to_string(k, *e)
                );
            }
            Stmt::ShiftIn(a, e) => {
                let _ = writeln!(
                    s,
                    "shiftin {} <- {};",
                    k.arrays()[a.index()].name,
                    expr_to_string(k, *e)
                );
            }
            Stmt::Output(i, e) => {
                let _ = writeln!(s, "{} = {};", k.outputs()[*i].name, expr_to_string(k, *e));
            }
            Stmt::For { var, count, body } => {
                let _ = writeln!(s, "for {var} in 0..{count} {{");
                write_stmts(s, k, body, level + 1);
                indent(s, level);
                s.push_str("}\n");
            }
        }
    }
}

/// Renders one expression tree with minimal parentheses.
pub fn expr_to_string(k: &Kernel, e: ExprId) -> String {
    fn prec(node: &ExprNode) -> u8 {
        match node {
            ExprNode::Bin(crate::types::BinOp::Add, ..)
            | ExprNode::Bin(crate::types::BinOp::Sub, ..) => 1,
            ExprNode::Bin(crate::types::BinOp::Mul, ..) => 2,
            ExprNode::Unary(..) => 3,
            _ => 4,
        }
    }
    fn go(k: &Kernel, e: ExprId, parent_prec: u8, out: &mut String) {
        let node = k.expr(e);
        let p = prec(node);
        let need_paren = p < parent_prec;
        if need_paren {
            out.push('(');
        }
        match node {
            ExprNode::Const(v) => {
                let _ = write!(out, "{v}");
                if v.fract() == 0.0 && v.is_finite() {
                    out.push_str(".0");
                }
            }
            ExprNode::ReadVar(v) => out.push_str(&k.vars()[v.index()].name),
            ExprNode::ReadInput(i) => out.push_str(&k.inputs()[i.index()].name),
            ExprNode::LoadParam(pa, ix) => {
                let _ = write!(out, "{}[{}]", k.params()[pa.index()].name, ix);
            }
            ExprNode::LoadArray(a, ix) => {
                let _ = write!(out, "{}[{}]", k.arrays()[a.index()].name, ix);
            }
            ExprNode::Unary(op, a) => {
                let _ = write!(out, "{op}");
                go(k, *a, p, out);
            }
            ExprNode::Bin(op, a, b) => {
                go(k, *a, p, out);
                let _ = write!(out, " {op} ");
                // Right operand binds tighter to preserve left associativity.
                go(k, *b, p + 1, out);
            }
        }
        if need_paren {
            out.push(')');
        }
    }
    let mut s = String::new();
    go(k, e, 0, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn renders_expressions_with_precedence() {
        let mut b = KernelBuilder::new("p");
        let y = b.output("y");
        let c1 = b.constf(1.0);
        let c2 = b.constf(2.0);
        let c3 = b.constf(3.0);
        let s = b.add(c1, c2);
        let m = b.mul(s, c3);
        b.set_output(y, m);
        let k = b.finish();
        let text = kernel_to_string(&k);
        assert!(text.contains("y = (1.0 + 2.0) * 3.0;"), "got: {text}");
    }

    #[test]
    fn renders_loops_and_decls() {
        let mut b = KernelBuilder::new("fir");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let dl = b.array("dl", 8);
        let c = b.param("c", vec![0.5, 0.25]);
        let acc = b.var("acc");
        let xv = b.read_input(x);
        b.shift_in(dl, xv);
        let z = b.constf(0.0);
        b.assign(acc, z);
        let i = b.begin_for(8);
        let cv = b.load_param_ix(c, crate::types::IndexExpr::affine(i, 1, 0));
        let lv = b.load_ix(dl, crate::types::IndexExpr::affine(i, 1, 0));
        let m = b.mul(cv, lv);
        let av = b.read_var(acc);
        let s = b.add(av, m);
        b.assign(acc, s);
        b.end_for(i);
        let r = b.read_var(acc);
        b.set_output(y, r);
        let k = b.finish();
        let text = kernel_to_string(&k);
        assert!(text.contains("input x range [-1, 1];"));
        assert!(text.contains("for i0 in 0..8 {"));
        assert!(text.contains("shiftin dl <- x;"));
        assert!(text.contains("acc = acc + c[i0] * dl[i0];"));
    }

    #[test]
    fn negation_renders() {
        let mut b = KernelBuilder::new("n");
        let y = b.output("y");
        let c = b.constf(2.0);
        let n = b.neg(c);
        b.set_output(y, n);
        let k = b.finish();
        assert!(kernel_to_string(&k).contains("y = -2.0;"));
    }
}
