//! Textual front-end: a small kernel description language.
//!
//! The DSL plays the role of the annotated C accepted by the paper's
//! GeCoS/ID.Fix flow: value ranges are part of the input declarations and
//! loops carry optional `unroll` annotations which are applied immediately
//! after parsing.
//!
//! # Grammar
//!
//! ```text
//! kernel    := "kernel" IDENT "{" decl* stmt* "}"
//! decl      := "input" IDENT "range" "[" NUM "," NUM "]" ";"
//!            | "output" IDENT ";"
//!            | "param" IDENT "[" INT "]" "=" "{" NUM ("," NUM)* "}" ";"
//!            | "array" IDENT "[" INT "]" ";"
//!            | "var" IDENT ";"
//! stmt      := IDENT "=" expr ";"                  (variable or output)
//!            | IDENT "[" index "]" "=" expr ";"    (array store)
//!            | "shiftin" IDENT "<-" expr ";"
//!            | "for" IDENT "in" INT ".." INT ("unroll" INT)? "{" stmt* "}"
//! expr      := term (("+"|"-") term)*
//! term      := factor ("*" factor)*
//! factor    := "-" factor | "(" expr ")" | NUM
//!            | IDENT | IDENT "[" index "]"
//! index     := iterm (("+"|"-") iterm)*
//! iterm     := INT | IDENT | INT "*" IDENT | IDENT "*" INT
//! ```
//!
//! # Example
//!
//! ```
//! let src = r#"
//! kernel ma2 {
//!     input x range [-1, 1];
//!     output y;
//!     array dl[2];
//!     shiftin dl <- x;
//!     y = 0.5 * dl[0] + 0.5 * dl[1];
//! }
//! "#;
//! let kernel = slpwlo_ir::parser::parse_kernel(src)?;
//! assert_eq!(kernel.name(), "ma2");
//! # Ok::<(), slpwlo_ir::IrError>(())
//! ```

use crate::builder::KernelBuilder;
use crate::error::IrError;
use crate::kernel::Kernel;
use crate::types::{ArrayId, ExprId, IndexExpr, InputId, LoopId, ParamId, VarId};
use crate::unroll::unroll;
use std::collections::HashMap;

/// Parses a kernel from DSL text and applies `unroll` annotations.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with line/column information on syntax
/// errors, and other [`IrError`] variants for semantic problems (duplicate
/// or unknown names).
pub fn parse_kernel(src: &str) -> Result<Kernel, IrError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    p.kernel()
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Int(i64),
    LBrace,
    RBrace,
    LBrack,
    RBrack,
    LParen,
    RParen,
    Comma,
    Semi,
    Eq,
    Plus,
    Minus,
    Star,
    DotDot,
    Arrow,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<Spanned>, IrError> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        // Only ever called after a successful `peek`, so the iterator
        // cannot be exhausted; the `\0` arm keeps this total instead of
        // unwrap-panicking if that coupling is ever broken.
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let Some(c) = chars.next() else { return '\0' };
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        if c.is_whitespace() {
            bump(&mut chars);
            continue;
        }
        if c == '/' {
            // Line comment `// ...`
            bump(&mut chars);
            if chars.peek() == Some(&'/') {
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    bump(&mut chars);
                }
                continue;
            }
            return Err(IrError::Parse {
                line: tl,
                col: tc,
                msg: "unexpected `/`".into(),
            });
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_alphanumeric() || c2 == '_' {
                    s.push(bump(&mut chars));
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(s),
                line: tl,
                col: tc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut s = String::new();
            let mut is_float = false;
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_digit() {
                    s.push(bump(&mut chars));
                } else if c2 == '.' {
                    // Lookahead: `..` is the range operator, not a decimal.
                    let mut clone = chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'.') {
                        break;
                    }
                    is_float = true;
                    s.push(bump(&mut chars));
                } else if c2 == 'e' || c2 == 'E' {
                    is_float = true;
                    s.push(bump(&mut chars));
                    if matches!(chars.peek(), Some('+') | Some('-')) {
                        s.push(bump(&mut chars));
                    }
                } else {
                    break;
                }
            }
            let tok = if is_float {
                Tok::Num(s.parse().map_err(|_| IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("bad number `{s}`"),
                })?)
            } else {
                Tok::Int(s.parse().map_err(|_| IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("bad integer `{s}`"),
                })?)
            };
            out.push(Spanned {
                tok,
                line: tl,
                col: tc,
            });
            continue;
        }
        let tok = match c {
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBrack,
            ']' => Tok::RBrack,
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            '=' => Tok::Eq,
            '+' => Tok::Plus,
            '*' => Tok::Star,
            '-' => {
                bump(&mut chars);
                if chars.peek() == Some(&'-') {
                    return Err(IrError::Parse {
                        line: tl,
                        col: tc,
                        msg: "unexpected `--`".into(),
                    });
                }
                out.push(Spanned {
                    tok: Tok::Minus,
                    line: tl,
                    col: tc,
                });
                continue;
            }
            '.' => {
                bump(&mut chars);
                if chars.peek() == Some(&'.') {
                    bump(&mut chars);
                    out.push(Spanned {
                        tok: Tok::DotDot,
                        line: tl,
                        col: tc,
                    });
                    continue;
                }
                return Err(IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: "unexpected `.`".into(),
                });
            }
            '<' => {
                bump(&mut chars);
                if chars.peek() == Some(&'-') {
                    bump(&mut chars);
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        line: tl,
                        col: tc,
                    });
                    continue;
                }
                return Err(IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: "unexpected `<`".into(),
                });
            }
            other => {
                return Err(IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        };
        bump(&mut chars);
        out.push(Spanned {
            tok,
            line: tl,
            col: tc,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    inputs: HashMap<String, InputId>,
    outputs: HashMap<String, usize>,
    params: HashMap<String, ParamId>,
    arrays: HashMap<String, ArrayId>,
    vars: HashMap<String, VarId>,
    loops: Vec<(String, LoopId)>,
    unrolls: Vec<(LoopId, u32)>,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Self {
        Parser {
            toks,
            pos: 0,
            inputs: HashMap::new(),
            outputs: HashMap::new(),
            params: HashMap::new(),
            arrays: HashMap::new(),
            vars: HashMap::new(),
            loops: Vec::new(),
            unrolls: Vec::new(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> IrError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        IrError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), IrError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, IrError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected {what}")))
            }
        }
    }

    fn number(&mut self) -> Result<f64, IrError> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(v),
            Some(Tok::Int(v)) => Ok(v as f64),
            Some(Tok::Minus) => Ok(-self.number()?),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected number"))
            }
        }
    }

    fn integer(&mut self) -> Result<i64, IrError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            Some(Tok::Minus) => Ok(-self.integer()?),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected integer"))
            }
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn kernel(&mut self) -> Result<Kernel, IrError> {
        if !self.eat_kw("kernel") {
            return Err(self.err("expected `kernel`"));
        }
        let name = self.ident("kernel name")?;
        let mut b = KernelBuilder::new(name);
        self.expect(Tok::LBrace, "`{`")?;
        // Declarations first (they may be interleaved, we accept any order
        // before statements that use them).
        loop {
            if self.eat_kw("input") {
                let n = self.ident("input name")?;
                if !self.eat_kw("range") {
                    return Err(self.err("expected `range`"));
                }
                self.expect(Tok::LBrack, "`[`")?;
                let lo = self.number()?;
                self.expect(Tok::Comma, "`,`")?;
                let hi = self.number()?;
                // Checked before the `]`/`;` are consumed so the error
                // location points at the offending range, not past it.
                if !lo.is_finite() || !hi.is_finite() || lo > hi {
                    return Err(self.err(format!(
                        "unusable range [{lo}, {hi}] on input `{n}` (need finite lo <= hi)"
                    )));
                }
                self.expect(Tok::RBrack, "`]`")?;
                self.expect(Tok::Semi, "`;`")?;
                self.declare(&n)?;
                let id = b.input(n.clone(), lo, hi);
                self.inputs.insert(n, id);
            } else if self.eat_kw("output") {
                let n = self.ident("output name")?;
                self.expect(Tok::Semi, "`;`")?;
                self.declare(&n)?;
                let id = b.output(n.clone());
                self.outputs.insert(n, id);
            } else if self.eat_kw("param") {
                let n = self.ident("param name")?;
                self.expect(Tok::LBrack, "`[`")?;
                let len = self.integer()?;
                self.expect(Tok::RBrack, "`]`")?;
                self.expect(Tok::Eq, "`=`")?;
                self.expect(Tok::LBrace, "`{`")?;
                let mut vals = Vec::new();
                loop {
                    vals.push(self.number()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBrace, "`}`")?;
                self.expect(Tok::Semi, "`;`")?;
                if vals.len() != len as usize {
                    return Err(self.err(format!(
                        "param `{n}` declares {len} values but lists {}",
                        vals.len()
                    )));
                }
                self.declare(&n)?;
                let id = b.param(n.clone(), vals);
                self.params.insert(n, id);
            } else if self.eat_kw("array") {
                let n = self.ident("array name")?;
                self.expect(Tok::LBrack, "`[`")?;
                let len = self.integer()?;
                self.expect(Tok::RBrack, "`]`")?;
                self.expect(Tok::Semi, "`;`")?;
                if len <= 0 {
                    return Err(self.err("array length must be positive"));
                }
                self.declare(&n)?;
                let id = b.array(n.clone(), len as usize);
                self.arrays.insert(n, id);
            } else if self.eat_kw("var") {
                let n = self.ident("variable name")?;
                self.expect(Tok::Semi, "`;`")?;
                self.declare(&n)?;
                let id = b.var(n.clone());
                self.vars.insert(n, id);
            } else {
                break;
            }
        }
        // Statements.
        while self.peek() != Some(&Tok::RBrace) {
            self.stmt(&mut b)?;
        }
        self.expect(Tok::RBrace, "`}`")?;
        let mut kernel = b.try_finish()?;
        for &(l, f) in &self.unrolls {
            unroll(&mut kernel, l, f)?;
        }
        Ok(kernel)
    }

    fn declare(&self, name: &str) -> Result<(), IrError> {
        if self.inputs.contains_key(name)
            || self.outputs.contains_key(name)
            || self.params.contains_key(name)
            || self.arrays.contains_key(name)
            || self.vars.contains_key(name)
        {
            Err(IrError::DuplicateName(name.to_string()))
        } else {
            Ok(())
        }
    }

    fn stmt(&mut self, b: &mut KernelBuilder) -> Result<(), IrError> {
        if self.eat_kw("shiftin") {
            let n = self.ident("array name")?;
            let a = *self
                .arrays
                .get(&n)
                .ok_or_else(|| IrError::UnknownName(n.clone()))?;
            self.expect(Tok::Arrow, "`<-`")?;
            let e = self.expr(b)?;
            self.expect(Tok::Semi, "`;`")?;
            b.shift_in(a, e);
            return Ok(());
        }
        if self.eat_kw("for") {
            let n = self.ident("loop variable")?;
            if !self.eat_kw("in") {
                return Err(self.err("expected `in`"));
            }
            let lo = self.integer()?;
            self.expect(Tok::DotDot, "`..`")?;
            let hi = self.integer()?;
            if lo != 0 || hi <= 0 {
                return Err(self.err("loops must have the form `0..count` with count > 0"));
            }
            if hi > u32::MAX as i64 {
                return Err(self.err(format!("loop count {hi} exceeds the supported maximum")));
            }
            let mut factor = None;
            if self.eat_kw("unroll") {
                let f = self.integer()?;
                // `unroll 0` is the library's "unroll fully" spelling, but
                // in source it is almost certainly a typo; negative factors
                // would wrap the `u32` cast into astronomically large ones.
                if f <= 0 || f > u32::MAX as i64 {
                    return Err(self.err(format!("unroll factor must be positive, got {f}")));
                }
                factor = Some(f as u32);
            }
            self.expect(Tok::LBrace, "`{`")?;
            let l = b.begin_for(hi as u32);
            self.loops.push((n, l));
            while self.peek() != Some(&Tok::RBrace) {
                self.stmt(b)?;
            }
            self.expect(Tok::RBrace, "`}`")?;
            self.loops.pop();
            b.end_for(l);
            if let Some(f) = factor {
                self.unrolls.push((l, f));
            }
            return Ok(());
        }
        // Assignment to var, output or array element.
        let n = self.ident("statement")?;
        if self.peek() == Some(&Tok::LBrack) {
            let a = *self
                .arrays
                .get(&n)
                .ok_or_else(|| IrError::UnknownName(n.clone()))?;
            self.pos += 1;
            let ix = self.index()?;
            self.expect(Tok::RBrack, "`]`")?;
            self.expect(Tok::Eq, "`=`")?;
            let e = self.expr(b)?;
            self.expect(Tok::Semi, "`;`")?;
            b.store_ix(a, ix, e);
            return Ok(());
        }
        self.expect(Tok::Eq, "`=`")?;
        let e = self.expr(b)?;
        self.expect(Tok::Semi, "`;`")?;
        if let Some(&v) = self.vars.get(&n) {
            b.assign(v, e);
        } else if let Some(&o) = self.outputs.get(&n) {
            b.set_output(o, e);
        } else {
            return Err(IrError::UnknownName(n));
        }
        Ok(())
    }

    fn expr(&mut self, b: &mut KernelBuilder) -> Result<ExprId, IrError> {
        let mut lhs = self.term(b)?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.term(b)?;
                    lhs = b.add(lhs, rhs);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.term(b)?;
                    lhs = b.sub(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self, b: &mut KernelBuilder) -> Result<ExprId, IrError> {
        let mut lhs = self.factor(b)?;
        while self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            let rhs = self.factor(b)?;
            lhs = b.mul(lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self, b: &mut KernelBuilder) -> Result<ExprId, IrError> {
        match self.peek().cloned() {
            Some(Tok::Minus) => {
                self.pos += 1;
                let inner = self.factor(b)?;
                Ok(b.neg(inner))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr(b)?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Ok(b.constf(v))
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(b.constf(v as f64))
            }
            Some(Tok::Ident(n)) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::LBrack) {
                    self.pos += 1;
                    let ix = self.index()?;
                    self.expect(Tok::RBrack, "`]`")?;
                    if let Some(&p) = self.params.get(&n) {
                        Ok(b.load_param_ix(p, ix))
                    } else if let Some(&a) = self.arrays.get(&n) {
                        Ok(b.load_ix(a, ix))
                    } else {
                        Err(IrError::UnknownName(n))
                    }
                } else if let Some(&i) = self.inputs.get(&n) {
                    Ok(b.read_input(i))
                } else if let Some(&v) = self.vars.get(&n) {
                    Ok(b.read_var(v))
                } else {
                    Err(IrError::UnknownName(n))
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }

    /// Parses an affine index expression.
    fn index(&mut self) -> Result<IndexExpr, IrError> {
        let mut ix = IndexExpr::constant(0);
        let mut sign = 1i64;
        loop {
            match self.next() {
                Some(Tok::Int(v)) => {
                    // `INT` or `INT * loop`
                    if self.peek() == Some(&Tok::Star) {
                        self.pos += 1;
                        let n = self.ident("loop variable")?;
                        let l = self.lookup_loop(&n)?;
                        ix.add_term(l, sign * v);
                    } else {
                        ix.add_offset(sign * v);
                    }
                }
                Some(Tok::Ident(n)) => {
                    // `loop` or `loop * INT`
                    let l = self.lookup_loop(&n)?;
                    if self.peek() == Some(&Tok::Star) {
                        self.pos += 1;
                        let v = self.integer()?;
                        ix.add_term(l, sign * v);
                    } else {
                        ix.add_term(l, sign);
                    }
                }
                Some(Tok::Minus) => {
                    // unary minus at start of a term
                    sign = -sign;
                    continue;
                }
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected index term"));
                }
            }
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    sign = 1;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    sign = -1;
                }
                _ => return Ok(ix),
            }
        }
    }

    fn lookup_loop(&self, name: &str) -> Result<LoopId, IrError> {
        self.loops
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, l)| l)
            .ok_or_else(|| IrError::UnknownName(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Executor, FloatSem};

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    #[test]
    fn parses_and_unrolls_fir() {
        let k = parse_kernel(FIR8).unwrap();
        assert_eq!(k.name(), "fir8");
        assert_eq!(k.inputs().len(), 1);
        assert_eq!(k.params()[0].values.len(), 8);
        // unroll 4 => main loop of 2 trips
        let blocks = crate::blocks::collect_blocks(&k);
        let loop_block = blocks.iter().find(|b| b.in_loop()).unwrap();
        assert_eq!(loop_block.trip(), 2);
    }

    #[test]
    fn parsed_kernel_executes() {
        let k = parse_kernel(FIR8).unwrap();
        let mut ex = Executor::new(&k, FloatSem);
        // Moving average of 8 ones = 1.0 after warmup.
        let out = ex.run(&[vec![1.0; 16]]);
        assert!((out[0][15] - 1.0).abs() < 1e-12);
        assert!((out[0][0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_through_pretty() {
        let k = parse_kernel(FIR8).unwrap();
        let text = crate::pretty::kernel_to_string(&k);
        // The pretty form uses internal loop names (i0...) but stays in-grammar
        // apart from those; re-lexing must succeed.
        assert!(lex(&text).is_ok());
    }

    #[test]
    fn rejects_unknown_names() {
        let src = "kernel k { output y; y = z; }";
        assert!(matches!(parse_kernel(src), Err(IrError::UnknownName(n)) if n == "z"));
    }

    #[test]
    fn rejects_duplicate_names() {
        let src = "kernel k { var a; var a; }";
        assert!(matches!(parse_kernel(src), Err(IrError::DuplicateName(_))));
    }

    #[test]
    fn reports_line_and_column() {
        let src = "kernel k {\n  output y;\n  y = ;\n}";
        match parse_kernel(src) {
            Err(IrError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn negative_index_offsets() {
        let src = r#"
kernel k {
    output y;
    array a[4];
    for i in 0..2 {
        a[2*i + 1] = 1.0;
    }
    y = a[-1];
}
"#;
        let k = parse_kernel(src).unwrap();
        let mut ex = Executor::new(&k, FloatSem);
        let vals = ex.step(&[]);
        // a[-1] wraps to a[3], which stored 1.0 when i=1.
        assert_eq!(vals, vec![1.0]);
    }

    #[test]
    fn rejects_negative_unroll_factors() {
        let src = "kernel k { output y; var a; a = 0.0;\n\
                   for i in 0..4 unroll -1 { a = a + 1.0; } y = a; }";
        match parse_kernel(src) {
            Err(IrError::Parse { msg, .. }) => assert!(msg.contains("unroll factor"), "{msg}"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_unroll_factors() {
        let src = "kernel k { output y; var a; a = 0.0;\n\
                   for i in 0..4 unroll 0 { a = a + 1.0; } y = a; }";
        assert!(matches!(parse_kernel(src), Err(IrError::Parse { .. })));
    }

    #[test]
    fn rejects_overflowing_loop_counts() {
        let src = "kernel k { output y; var a; a = 0.0;\n\
                   for i in 0..4294967296 { a = a + 1.0; } y = a; }";
        match parse_kernel(src) {
            Err(IrError::Parse { msg, .. }) => assert!(msg.contains("loop count"), "{msg}"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let src = "kernel k { // header\n output y; // decl\n y = 1.0; }";
        assert!(parse_kernel(src).is_ok());
    }

    #[test]
    fn precedence_mul_over_add() {
        let src = "kernel k { output y; y = 1.0 + 2.0 * 3.0; }";
        let k = parse_kernel(src).unwrap();
        let mut ex = Executor::new(&k, FloatSem);
        assert_eq!(ex.step(&[]), vec![7.0]);
    }

    #[test]
    fn parenthesised_expressions() {
        let src = "kernel k { output y; y = (1.0 + 2.0) * 3.0; }";
        let k = parse_kernel(src).unwrap();
        let mut ex = Executor::new(&k, FloatSem);
        assert_eq!(ex.step(&[]), vec![9.0]);
    }
}
