//! Influence cones and deviation lifetimes over the kernel dependence
//! graph.
//!
//! A value deviation injected at one expression (an impulse, a
//! quantization error, a coefficient edit) can only ever be observed
//! *downstream* of that expression: at its consumers, at later reads of a
//! variable it was assigned to, and at later loads of a state array it
//! was stored into. Everywhere else the kernel computes bit-for-bit the
//! same values it would have computed without the deviation.
//!
//! [`ConeIndex`] materialises that fact once per kernel:
//!
//! * **cones** — for every expression `src`, the downstream closure
//!   `cone(src)` as a dense bitset over the arena (self-inclusive), built
//!   from three edge families: operand → parent, assignment → reaching
//!   `ReadVar`s (including the cross-activation carry into reads that
//!   execute before the variable's first write of an activation), and
//!   store/shift-in → every load of the written array;
//! * **lifetimes** — for every expression, an upper bound on how many
//!   activations after the injecting one a deviation can still reach an
//!   output (`None` when feedback makes it unbounded). Delay-line state
//!   bounds the carry (`ShiftIn` into a length-`n` array is readable for
//!   at most `n` further activations), a live-across variable carries one
//!   activation per hop, and plain `Store` arrays or dependence cycles
//!   make the bound infinite.
//!
//! Gain analysis uses cones to evaluate each impulse lane only over the
//! expressions its deviation can reach (everything else is *exactly* the
//! baseline, so skipping is bitwise-free) and lifetimes to retire lanes
//! whose response is provably dead. Incremental range analysis uses
//! cones to re-propagate only the part of the interval fixpoint a kernel
//! edit can affect.

use crate::kernel::{ExprNode, Kernel, Stmt};
use crate::types::{ExprId, VarId};
use std::collections::HashMap;

/// Per-variable dataflow facts of one kernel activation, shared by the
/// accuracy model's operand-grid resolution and the cone construction.
#[derive(Debug, Default)]
pub struct VarFlow {
    /// Possible defining root expressions for every `ReadVar` expression
    /// (within one activation; reads seeing only the activation-entry
    /// value have no entry).
    pub reaching: HashMap<ExprId, Vec<ExprId>>,
    /// Per variable: root expressions of assignments whose value can
    /// survive to the end of the activation.
    pub exit_defs: HashMap<VarId, Vec<ExprId>>,
    /// Per variable: `ReadVar` expressions that can observe the value the
    /// variable held at activation entry (reads before the first write).
    pub entry_reads: HashMap<VarId, Vec<ExprId>>,
}

/// Computes [`VarFlow`] with a structured two-pass dataflow: loop bodies
/// are walked twice so that back-edge definitions (accumulators) reach
/// the reads at the top of the body; the entry state is merged, so both
/// "first iteration" and "subsequent iteration" definitions are
/// reported.
pub fn var_flow(kernel: &Kernel) -> VarFlow {
    type State = HashMap<VarId, Vec<ExprId>>;

    fn record_reads(kernel: &Kernel, e: ExprId, state: &State, flow: &mut VarFlow) {
        match kernel.expr(e) {
            ExprNode::ReadVar(v) => {
                match state.get(v) {
                    Some(defs) if !defs.is_empty() => {
                        let entry = flow.reaching.entry(e).or_default();
                        for d in defs {
                            if !entry.contains(d) {
                                entry.push(*d);
                            }
                        }
                    }
                    _ => {
                        // No def yet this activation: the read observes the
                        // activation-entry value (initial zero on the first
                        // activation, the carried value afterwards).
                        let entry = flow.entry_reads.entry(*v).or_default();
                        if !entry.contains(&e) {
                            entry.push(e);
                        }
                    }
                }
            }
            n => {
                for op in n.operands() {
                    record_reads(kernel, op, state, flow);
                }
            }
        }
    }

    fn merge(into: &mut State, from: &State) {
        for (v, defs) in from {
            let entry = into.entry(*v).or_default();
            for d in defs {
                if !entry.contains(d) {
                    entry.push(*d);
                }
            }
        }
    }

    fn walk(kernel: &Kernel, stmts: &[Stmt], state: &mut State, flow: &mut VarFlow) {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    record_reads(kernel, *e, state, flow);
                    state.insert(*v, vec![*e]);
                }
                Stmt::Store(_, _, e) | Stmt::ShiftIn(_, e) | Stmt::Output(_, e) => {
                    record_reads(kernel, *e, state, flow);
                }
                Stmt::For { body, .. } => {
                    // First pass: entry state.
                    let mut first = state.clone();
                    walk(kernel, body, &mut first, flow);
                    // Second pass: entry state merged with the first pass's
                    // exit state — reads now also see back-edge defs.
                    let mut second = state.clone();
                    merge(&mut second, &first);
                    walk(kernel, body, &mut second, flow);
                    // Trip counts are at least one, so the state after the
                    // loop is exactly the second pass's exit state (vars
                    // the body never defines keep their entry defs there).
                    *state = second;
                }
            }
        }
    }

    let mut flow = VarFlow::default();
    let mut state = State::new();
    walk(kernel, kernel.body(), &mut state, &mut flow);
    for (v, defs) in state {
        flow.exit_defs.insert(v, defs);
    }
    flow
}

/// Downstream influence cones and deviation lifetimes, computed once per
/// kernel (see the module docs).
#[derive(Debug, Clone)]
pub struct ConeIndex {
    exprs: usize,
    words: usize,
    /// `exprs` rows of `words` 64-bit words: row `e` is the bitset of
    /// expressions a deviation at `e` can reach (including `e` itself).
    bits: Vec<u64>,
    /// Per expression: max activations after the injecting one at which
    /// a deviation can still reach an output; `None` = unbounded.
    life: Vec<Option<u32>>,
}

impl ConeIndex {
    /// Builds the index for a kernel.
    pub fn build(kernel: &Kernel) -> Self {
        let n = kernel.expr_count();
        let words = n.div_ceil(64).max(1);

        // -- Edge construction ------------------------------------------
        // succ[e] = (successor, activation delay). The delay is an upper
        // bound on how many activations later the successor can observe
        // the value.
        let mut succ: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut unbounded_edge: Vec<bool> = vec![false; n];
        for (id, node) in kernel.exprs() {
            for op in node.operands() {
                succ[op.index()].push((id.index() as u32, 0));
            }
        }
        let flow = var_flow(kernel);
        for (read, defs) in &flow.reaching {
            for d in defs {
                succ[d.index()].push((read.index() as u32, 0));
            }
        }
        // Cross-activation variable carry: the last def of an activation
        // feeds the next activation's reads-before-first-write.
        for (v, defs) in &flow.exit_defs {
            if let Some(reads) = flow.entry_reads.get(v) {
                for d in defs {
                    for r in reads {
                        succ[d.index()].push((r.index() as u32, 1));
                    }
                }
            }
        }
        // Array state: store/shift-in roots feed every load of the array.
        // A `ShiftIn` into a length-`len` line is observable for at most
        // `len` activations (a load placed before the shift still sees the
        // value during the activation that expels it); a plain `Store`
        // persists until overwritten, which this analysis does not bound.
        let mut loads_of: Vec<Vec<u32>> = vec![Vec::new(); kernel.arrays().len()];
        for (id, node) in kernel.exprs() {
            if let ExprNode::LoadArray(a, _) = node {
                loads_of[a.index()].push(id.index() as u32);
            }
        }
        let mut output_root = vec![false; n];
        kernel.visit_stmts(&mut |s, _| match s {
            Stmt::ShiftIn(a, e) => {
                let len = kernel.arrays()[a.index()].len as u32;
                for &l in &loads_of[a.index()] {
                    succ[e.index()].push((l, len));
                }
            }
            Stmt::Store(a, _, e) => {
                for &l in &loads_of[a.index()] {
                    succ[e.index()].push((l, 0));
                }
                // The written value can outlive any static bound.
                if !loads_of[a.index()].is_empty() {
                    unbounded_edge[e.index()] = true;
                }
            }
            Stmt::Output(_, e) => output_root[e.index()] = true,
            _ => {}
        });

        // -- Cones: transitive closure over all edges -------------------
        // Rows converge in a handful of sweeps: ids are topological for
        // operand edges, so a reverse-order sweep resolves whole
        // statement trees at once and only the loop-carried edges need
        // extra rounds.
        let mut bits = vec![0u64; n * words];
        for e in 0..n {
            bits[e * words + e / 64] |= 1u64 << (e % 64);
        }
        loop {
            let mut changed = false;
            for e in (0..n).rev() {
                for &(s, _) in &succ[e] {
                    let (row_e, row_s) = if e < s as usize {
                        let (a, b) = bits.split_at_mut(s as usize * words);
                        (&mut a[e * words..e * words + words], &b[..words])
                    } else if (s as usize) < e {
                        let (a, b) = bits.split_at_mut(e * words);
                        (
                            &mut b[..words],
                            &a[s as usize * words..s as usize * words + words],
                        )
                    } else {
                        continue;
                    };
                    for w in 0..words {
                        let merged = row_e[w] | row_s[w];
                        if merged != row_e[w] {
                            row_e[w] = merged;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // -- Lifetimes: longest delay to an output ----------------------
        let life = lifetimes(n, &succ, &unbounded_edge, &output_root);

        ConeIndex {
            exprs: n,
            words,
            bits,
            life,
        }
    }

    /// Number of expressions the index covers.
    pub fn expr_count(&self) -> usize {
        self.exprs
    }

    /// True when a deviation at `src` can influence the value of `e`.
    #[inline]
    pub fn contains(&self, src: ExprId, e: ExprId) -> bool {
        let i = e.index();
        self.bits[src.index() * self.words + i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of expressions inside `src`'s cone.
    pub fn cone_size(&self, src: ExprId) -> usize {
        let row = &self.bits[src.index() * self.words..(src.index() + 1) * self.words];
        row.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Calls `f` with the arena index of every expression inside `src`'s
    /// cone, in ascending order.
    pub fn for_each_member(&self, src: ExprId, mut f: impl FnMut(usize)) {
        let row = &self.bits[src.index() * self.words..][..self.words];
        for (wi, &word) in row.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Max activations after the injecting one at which a deviation at
    /// `e` can still reach an output; `None` when feedback or unbounded
    /// array state makes the tail unbounded. An expression that cannot
    /// reach any output at all has lifetime `Some(0)`.
    #[inline]
    pub fn life(&self, e: ExprId) -> Option<u32> {
        self.life[e.index()]
    }
}

/// Longest-delay-to-output over the (possibly cyclic) influence graph.
///
/// Cycles come in two flavours. Loop-carried accumulators form
/// zero-delay cycles — the add of trip `i` feeds the read of trip `i + 1`
/// within the same activation — which terminate with the loop and add no
/// delay, so the whole strongly connected component shares one tail.
/// Cross-activation feedback (a shift-in line read back into its own
/// producer, a variable carried over the activation boundary) puts a
/// positive-delay edge inside a component, and any expression that can
/// reach such a component, or a plain `Store` whose value persists
/// unbounded, has an unbounded tail. The SCC condensation is a DAG and
/// Tarjan pops components in reverse topological order, so one forward
/// sweep over component ids computes the exact longest path.
fn lifetimes(
    n: usize,
    succ: &[Vec<(u32, u32)>],
    unbounded_edge: &[bool],
    output_root: &[bool],
) -> Vec<Option<u32>> {
    // Expressions that can reach an output (reverse reachability).
    let mut reaches_out = output_root.to_vec();
    loop {
        let mut changed = false;
        for e in (0..n).rev() {
            if !reaches_out[e] && succ[e].iter().any(|&(s, _)| reaches_out[s as usize]) {
                reaches_out[e] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Tarjan's SCC, iterative. Components are numbered in pop order,
    // i.e. every successor component has a smaller id.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut next = 0usize;
    let mut ncomp = 0usize;
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        index[start] = next;
        low[start] = next;
        next += 1;
        scc_stack.push(start);
        on_stack[start] = true;
        call.push((start, 0));
        while let Some(&mut (e, ref mut i)) = call.last_mut() {
            if *i < succ[e].len() {
                let (s, _) = succ[e][*i];
                *i += 1;
                let s = s as usize;
                if index[s] == usize::MAX {
                    index[s] = next;
                    low[s] = next;
                    next += 1;
                    scc_stack.push(s);
                    on_stack[s] = true;
                    call.push((s, 0));
                } else if on_stack[s] {
                    low[e] = low[e].min(index[s]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[e]);
                }
                if low[e] == index[e] {
                    loop {
                        let v = scc_stack.pop().unwrap();
                        on_stack[v] = false;
                        comp[v] = ncomp;
                        if v == e {
                            break;
                        }
                    }
                    ncomp += 1;
                }
            }
        }
    }

    // Per-component facts. All members of a component are mutually
    // reachable, so `reaches_out` is uniform across a component.
    let mut comp_reaches = vec![false; ncomp];
    let mut comp_seed_unbounded = vec![false; ncomp];
    let mut comp_succ: Vec<Vec<(usize, u32)>> = vec![Vec::new(); ncomp];
    for e in 0..n {
        let c = comp[e];
        if reaches_out[e] {
            comp_reaches[c] = true;
            if unbounded_edge[e] {
                comp_seed_unbounded[c] = true;
            }
        }
        for &(s, w) in &succ[e] {
            let sc = comp[s as usize];
            if sc == c {
                // Internal positive-delay edge = genuine feedback loop.
                if w > 0 {
                    comp_seed_unbounded[c] = true;
                }
            } else {
                comp_succ[c].push((sc, w));
            }
        }
    }

    // One forward sweep (successor components first).
    let mut comp_unbounded = vec![false; ncomp];
    let mut comp_tail = vec![0u32; ncomp];
    for c in 0..ncomp {
        if !comp_reaches[c] {
            continue;
        }
        let mut unb = comp_seed_unbounded[c];
        let mut t = 0u32;
        for &(sc, w) in &comp_succ[c] {
            if !comp_reaches[sc] {
                continue;
            }
            if comp_unbounded[sc] {
                unb = true;
            } else {
                t = t.max(comp_tail[sc].saturating_add(w));
            }
        }
        comp_unbounded[c] = unb;
        comp_tail[c] = t;
    }

    (0..n)
        .map(|e| {
            if !reaches_out[e] {
                Some(0)
            } else if comp_unbounded[comp[e]] {
                None
            } else {
                Some(comp_tail[comp[e]])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;
    use crate::types::BinOp;

    const FIR4: &str = r#"
kernel fir4 {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.5, 0.25, -0.125, 0.0625 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    const IIR1: &str = r#"
kernel iir1 {
    input x range [-1, 1];
    output y;
    array yline[1];
    var t;
    t = 0.5 * x + 0.5 * yline[0];
    shiftin yline <- t;
    y = t;
}
"#;

    fn find(k: &Kernel, pred: impl Fn(&ExprNode) -> bool) -> ExprId {
        k.exprs().find(|(_, n)| pred(n)).map(|(e, _)| e).unwrap()
    }

    #[test]
    fn cone_is_self_inclusive_and_downstream() {
        let k = parse_kernel(FIR4).unwrap();
        let cone = ConeIndex::build(&k);
        let input = find(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        let mul = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)));
        let add = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Add, _, _)));
        assert!(cone.contains(input, input), "self-inclusive");
        // The input is shifted into the delay line, whose loads feed the
        // muls and the accumulator adds.
        assert!(cone.contains(input, mul));
        assert!(cone.contains(input, add));
        // The downstream add is not in the mul-operand's *upstream*.
        assert!(!cone.contains(add, input));
        assert!(!cone.contains(mul, input));
    }

    #[test]
    fn fir_lifetimes_are_bounded_by_the_delay_line() {
        let k = parse_kernel(FIR4).unwrap();
        let cone = ConeIndex::build(&k);
        let input = find(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        let add = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Add, _, _)));
        // The input conversion enters a length-4 line: observable for at
        // most 4 more activations.
        assert_eq!(cone.life(input), Some(4));
        // The accumulator add feeds only the output within the
        // activation (acc is redefined before any read next activation).
        assert_eq!(cone.life(add), Some(0));
    }

    #[test]
    fn feedback_lifetimes_are_unbounded() {
        let k = parse_kernel(IIR1).unwrap();
        let cone = ConeIndex::build(&k);
        // Every node feeding the recirculating yline is unbounded; the
        // final `y = t` read is a pure sink with an immediate output.
        let add = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Add, _, _)));
        let input = find(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        let load = find(&k, |n| matches!(n, ExprNode::LoadArray(_, _)));
        assert_eq!(cone.life(add), None);
        assert_eq!(cone.life(input), None);
        assert_eq!(cone.life(load), None);
    }

    #[test]
    fn store_arrays_are_unbounded_carriers() {
        let src = r#"
kernel st {
    input x range [-1, 1];
    output y;
    array a[4];
    var t;
    t = 0.5 * x;
    a[0] = t;
    y = 2.0 * a[1];
}
"#;
        let k = parse_kernel(src).unwrap();
        let cone = ConeIndex::build(&k);
        let mul = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)));
        assert_eq!(cone.life(mul), None, "plain stores persist unbounded");
    }

    #[test]
    fn live_across_variable_carries_one_activation() {
        // `h` is read before it is written: the read observes last
        // activation's value, so a deviation in the mul lives one extra
        // activation.
        let src = r#"
kernel carry {
    input x range [-1, 1];
    output y;
    var h;
    y = h + 0.0;
    h = 0.5 * x;
}
"#;
        let k = parse_kernel(src).unwrap();
        let cone = ConeIndex::build(&k);
        let mul = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)));
        let add = find(&k, |n| matches!(n, ExprNode::Bin(BinOp::Add, _, _)));
        assert_eq!(cone.life(mul), Some(1));
        assert_eq!(cone.life(add), Some(0));
        // And the cone crosses the activation boundary: the mul reaches
        // the add through the carried variable.
        assert!(cone.contains(mul, add));
    }

    #[test]
    fn dead_nodes_have_trivial_cones() {
        let src = "kernel k { input x range [-1,1]; output y; var a; for i in 0..4 unroll 2 { a = x * 1.0; } y = a; }";
        let k = parse_kernel(src).unwrap();
        let cone = ConeIndex::build(&k);
        // Dead arena nodes keep self-inclusive cones and a zero lifetime
        // (they reach nothing).
        for (e, _) in k.exprs() {
            assert!(cone.contains(e, e));
        }
    }
}
