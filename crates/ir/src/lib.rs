//! Kernel intermediate representation for the `slpwlo` tool-chain.
//!
//! This crate provides the compiler substrate on which the SLP-aware
//! word-length optimization of El Moussawi & Derrien (DATE 2017) operates.
//! The original work is implemented inside the GeCoS source-to-source C
//! framework; since no such pass ecosystem exists in Rust, this crate builds
//! the required pieces from scratch:
//!
//! * a structured **kernel IR** ([`Kernel`]): scalar variables, constant
//!   parameter tables, state arrays (delay lines / line buffers), counted
//!   loops with affine array indexing, and per-activation inputs/outputs
//!   annotated with value ranges (the "pragma annotations" of the paper),
//! * a **builder API** ([`builder::KernelBuilder`]) and a small textual
//!   **kernel DSL** ([`parser::parse_kernel`]) front-end,
//! * a **loop unrolling** pass ([`unroll`]) used to expose superword level
//!   parallelism exactly as the paper does (FIR/IIR inner loops unrolled by
//!   4, 3x3 convolution fully unrolled),
//! * per-basic-block **data-flow graphs** ([`dfg::Dfg`]) with dependence and
//!   reachability queries — the structure consumed by SLP extraction,
//! * a generic **interpreter** ([`interp`]) over pluggable value semantics,
//!   used both as the floating-point reference and as the engine for
//!   quantization-noise gain analysis and bit-accurate fixed-point
//!   simulation.
//!
//! # Example
//!
//! ```
//! use slpwlo_ir::builder::KernelBuilder;
//!
//! // y[n] = 0.5 * x[n] + 0.25 * x[n-1]
//! let mut b = KernelBuilder::new("tiny_fir");
//! let x = b.input("x", -1.0, 1.0);
//! let y = b.output("y");
//! let line = b.array("line", 2);
//! let xv = b.read_input(x);
//! b.shift_in(line, xv);
//! let c0 = b.constf(0.5);
//! let l0 = b.load(line, 0);
//! let t0 = b.mul(c0, l0);
//! let c1 = b.constf(0.25);
//! let l1 = b.load(line, 1);
//! let t1 = b.mul(c1, l1);
//! let sum = b.add(t0, t1);
//! b.set_output(y, sum);
//! let kernel = b.finish();
//! assert_eq!(kernel.name(), "tiny_fir");
//! ```

pub mod blocks;
pub mod builder;
pub mod cone;
pub mod dfg;
pub mod error;
pub mod interp;
pub mod kernel;
pub mod parser;
pub mod pretty;
pub mod types;
pub mod unroll;

pub use blocks::{Block, BlockId};
pub use builder::KernelBuilder;
pub use cone::ConeIndex;
pub use dfg::{Dfg, DfgNode, NodeId, NodeKind};
pub use error::IrError;
pub use interp::{ExecCtx, Executor, FloatSem, Semantics};
pub use kernel::{Array, ExprNode, Input, Kernel, Output, Param, Stmt, ValueSite, Var};
pub use types::{ArrayId, BinOp, ExprId, IndexExpr, InputId, LoopId, ParamId, UnOp, VarId};
