//! Basic-block discovery.
//!
//! SLP extraction works at the basic-block level. In this IR, a basic block
//! is a maximal run of consecutive non-loop statements within one statement
//! list. Loop bodies are visited recursively, so a fully unrolled loop body
//! becomes one large block — exactly the situation the paper's extraction
//! algorithm targets.

use crate::kernel::{Kernel, Stmt};
use crate::types::LoopId;
use std::fmt;

/// Identifies a basic block within one kernel (document order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: straight-line statements plus loop context.
#[derive(Debug, Clone)]
pub struct Block {
    /// Identity of this block (document order).
    pub id: BlockId,
    /// The straight-line statements of the block (no `For` inside). These
    /// are clones of the kernel's statements; expression ids still point
    /// into the kernel's arena.
    pub stmts: Vec<Stmt>,
    /// Enclosing loops, outermost first, with their trip counts.
    pub loops: Vec<(LoopId, u32)>,
}

impl Block {
    /// Product of enclosing trip counts: how many times the block executes
    /// per kernel activation.
    pub fn trip(&self) -> u64 {
        self.loops.iter().map(|&(_, c)| c as u64).product()
    }

    /// Execution-weighted expression-node count; used as the block priority
    /// of the paper ("contribution of the basic block to the overall
    /// execution time", approximated statically in lieu of profiling).
    pub fn priority(&self, kernel: &Kernel) -> u64 {
        let mut nodes = 0u64;
        for s in &self.stmts {
            if let Stmt::Assign(_, e)
            | Stmt::Store(_, _, e)
            | Stmt::ShiftIn(_, e)
            | Stmt::Output(_, e) = s
            {
                nodes += kernel.expr_tree_size(*e) as u64;
            }
        }
        nodes * self.trip()
    }

    /// Returns `true` if the block executes inside at least one loop.
    pub fn in_loop(&self) -> bool {
        !self.loops.is_empty()
    }
}

/// Collects the basic blocks of a kernel in document order.
pub fn collect_blocks(kernel: &Kernel) -> Vec<Block> {
    let mut out = Vec::new();
    let mut next = 0u32;
    fn go(stmts: &[Stmt], loops: &mut Vec<(LoopId, u32)>, out: &mut Vec<Block>, next: &mut u32) {
        let mut run: Vec<Stmt> = Vec::new();
        for s in stmts {
            match s {
                Stmt::For { var, count, body } => {
                    if !run.is_empty() {
                        out.push(Block {
                            id: BlockId(*next),
                            stmts: std::mem::take(&mut run),
                            loops: loops.clone(),
                        });
                        *next += 1;
                    }
                    loops.push((*var, *count));
                    go(body, loops, out, next);
                    loops.pop();
                }
                other => run.push(other.clone()),
            }
        }
        if !run.is_empty() {
            out.push(Block {
                id: BlockId(*next),
                stmts: run,
                loops: loops.clone(),
            });
            *next += 1;
        }
    }
    go(kernel.body(), &mut Vec::new(), &mut out, &mut next);
    out
}

/// Collects blocks sorted by descending [`Block::priority`], the visit
/// order required by the SLP-aware WLO algorithm (most execution-time
/// impacting blocks first). Ties break on document order for determinism.
pub fn blocks_by_priority(kernel: &Kernel) -> Vec<Block> {
    let mut blocks = collect_blocks(kernel);
    blocks.sort_by_key(|b| (std::cmp::Reverse(b.priority(kernel)), b.id));
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    /// head; for(8){ body }; tail  => 3 blocks.
    fn sandwich() -> Kernel {
        let mut b = KernelBuilder::new("s");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let acc = b.var("acc");
        let a = b.array("dl", 8);
        let xv = b.read_input(x);
        b.shift_in(a, xv);
        let z = b.constf(0.0);
        b.assign(acc, z);
        let i = b.begin_for(8);
        let av = b.read_var(acc);
        let l = b.load_ix(a, crate::types::IndexExpr::affine(i, 1, 0));
        let s = b.add(av, l);
        b.assign(acc, s);
        b.end_for(i);
        let r = b.read_var(acc);
        b.set_output(y, r);
        b.finish()
    }

    #[test]
    fn finds_three_blocks() {
        let k = sandwich();
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].stmts.len(), 2); // shift_in + assign
        assert_eq!(blocks[1].stmts.len(), 1); // the loop body's assign
        assert_eq!(blocks[1].trip(), 8);
        assert_eq!(blocks[2].stmts.len(), 1); // output
        assert!(blocks[1].in_loop());
        assert!(!blocks[0].in_loop());
    }

    #[test]
    fn priority_prefers_hot_loop() {
        let k = sandwich();
        let by_prio = blocks_by_priority(&k);
        // The loop body has 3 nodes * 8 trips = 24, the head has 3 nodes,
        // the tail has 1 node.
        assert_eq!(by_prio[0].trip(), 8);
        assert!(by_prio[0].priority(&k) > by_prio[1].priority(&k));
    }

    #[test]
    fn straight_line_kernel_is_one_block() {
        let mut b = KernelBuilder::new("sl");
        let y = b.output("y");
        let c = b.constf(1.0);
        b.set_output(y, c);
        let k = b.finish();
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].trip(), 1);
    }
}
