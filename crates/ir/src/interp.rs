//! Generic kernel interpreter over pluggable value semantics.
//!
//! The same execution engine drives three different clients:
//!
//! * the floating-point reference ([`FloatSem`]),
//! * quantization-noise **gain analysis** (a perturbing semantics defined in
//!   `slpwlo-accuracy`),
//! * **bit-accurate fixed-point simulation** (a fixed-point semantics, also
//!   in `slpwlo-accuracy`).
//!
//! A [`Semantics`] receives every expression-node evaluation together with
//! an [`ExecCtx`] identifying *which dynamic execution instance* of the node
//! is running — the key piece needed to inject impulses per execution
//! instance during gain analysis.

use crate::cone::ConeIndex;
use crate::kernel::{ExprNode, Kernel, Stmt};
use crate::types::{ArrayId, BinOp, ExprId, InputId, LoopId, ParamId, UnOp};
use std::collections::HashMap;

/// Identifies one dynamic execution of an expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecCtx {
    /// Index of the current activation (sample / pixel).
    pub activation: u32,
    /// How many times this expression has already executed within the
    /// current activation (0 for the first execution).
    pub exec: u32,
}

/// Value semantics plugged into the [`Executor`].
///
/// All methods receive the originating [`ExprId`] so implementations can
/// attach per-node behaviour (formats, noise sources). The default
/// implementations of [`var_use`](Semantics::var_use) and
/// [`store`](Semantics::store) pass values through unchanged.
pub trait Semantics {
    /// The runtime value representation.
    type Value: Copy;

    /// The value used to zero-initialise state arrays and variables.
    fn zero(&mut self) -> Self::Value;

    /// Materialises a literal constant.
    fn constant(&mut self, ctx: ExecCtx, e: ExprId, v: f64) -> Self::Value;

    /// Converts an incoming input sample.
    fn input(&mut self, ctx: ExecCtx, e: ExprId, input: InputId, raw: f64) -> Self::Value;

    /// Materialises a parameter-table constant.
    fn param(&mut self, ctx: ExecCtx, e: ExprId, p: ParamId, idx: i64, raw: f64) -> Self::Value;

    /// Observes a state-array load.
    fn load(&mut self, ctx: ExecCtx, e: ExprId, stored: Self::Value) -> Self::Value;

    /// Observes a variable read. Defaults to the identity.
    fn var_use(&mut self, _ctx: ExecCtx, _e: ExprId, v: Self::Value) -> Self::Value {
        v
    }

    /// Applies a unary operation.
    fn un(&mut self, ctx: ExecCtx, e: ExprId, op: UnOp, a: Self::Value) -> Self::Value;

    /// Applies a binary operation.
    fn bin(
        &mut self,
        ctx: ExecCtx,
        e: ExprId,
        op: BinOp,
        a: Self::Value,
        b: Self::Value,
    ) -> Self::Value;

    /// Transforms a value as it is written to a state array (e.g. to
    /// quantize it to the array's storage format). Defaults to the
    /// identity.
    fn store(&mut self, _array: ArrayId, v: Self::Value) -> Self::Value {
        v
    }

    /// Converts a value to `f64` for output collection and measurement.
    fn to_f64(&self, v: Self::Value) -> f64;
}

/// Plain IEEE-754 double-precision semantics: the reference behaviour
/// against which fixed-point implementations are compared.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloatSem;

impl Semantics for FloatSem {
    type Value = f64;

    fn zero(&mut self) -> f64 {
        0.0
    }

    fn constant(&mut self, _ctx: ExecCtx, _e: ExprId, v: f64) -> f64 {
        v
    }

    fn input(&mut self, _ctx: ExecCtx, _e: ExprId, _input: InputId, raw: f64) -> f64 {
        raw
    }

    fn param(&mut self, _ctx: ExecCtx, _e: ExprId, _p: ParamId, _idx: i64, raw: f64) -> f64 {
        raw
    }

    fn load(&mut self, _ctx: ExecCtx, _e: ExprId, stored: f64) -> f64 {
        stored
    }

    fn un(&mut self, _ctx: ExecCtx, _e: ExprId, op: UnOp, a: f64) -> f64 {
        match op {
            UnOp::Neg => -a,
        }
    }

    fn bin(&mut self, _ctx: ExecCtx, _e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
        match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        }
    }

    fn to_f64(&self, v: f64) -> f64 {
        v
    }
}

/// Executes a kernel over a workload of activations.
#[derive(Debug)]
pub struct Executor<'k, S: Semantics> {
    kernel: &'k Kernel,
    sem: S,
    arrays: Vec<Vec<S::Value>>,
    vars: Vec<S::Value>,
    outputs: Vec<S::Value>,
    /// Per-expression execution counters for the current activation, using
    /// an epoch scheme to avoid clearing between activations.
    exec_counts: Vec<(u32, u32)>,
    epoch: u32,
    activation: u32,
    loop_env: HashMap<LoopId, i64>,
}

impl<'k, S: Semantics> Executor<'k, S> {
    /// Creates an executor with zeroed state.
    pub fn new(kernel: &'k Kernel, mut sem: S) -> Self {
        let arrays = kernel
            .arrays()
            .iter()
            .map(|a| {
                let z = sem.zero();
                vec![z; a.len]
            })
            .collect();
        let vars = (0..kernel.vars().len()).map(|_| sem.zero()).collect();
        let outputs = (0..kernel.outputs().len()).map(|_| sem.zero()).collect();
        Executor {
            kernel,
            sem,
            arrays,
            vars,
            outputs,
            exec_counts: vec![(0, 0); kernel.expr_count()],
            epoch: 0,
            activation: 0,
            loop_env: HashMap::new(),
        }
    }

    /// Access to the plugged semantics (e.g. to read accumulated noise
    /// statistics after a run).
    pub fn semantics(&self) -> &S {
        &self.sem
    }

    /// Mutable access to the plugged semantics.
    pub fn semantics_mut(&mut self) -> &mut S {
        &mut self.sem
    }

    /// The current per-element state of every array (delay lines, line
    /// buffers). Fix-point analyses need this: a value propagates
    /// through a delay line one slot per activation without touching
    /// any expression until it reaches a read index, so expression
    /// state alone cannot witness convergence.
    pub fn array_state(&self) -> &[Vec<S::Value>] {
        &self.arrays
    }

    /// The current value of every scalar variable (see
    /// [`array_state`](Self::array_state) for why fix-point analyses
    /// need raw state: variables persist across activations too).
    pub fn var_state(&self) -> &[S::Value] {
        &self.vars
    }

    /// Runs the kernel over `inputs[i][n]` (input `i`, activation `n`) and
    /// returns `outputs[o][n]` as `f64` via [`Semantics::to_f64`].
    ///
    /// # Panics
    ///
    /// Panics if the number of input streams does not match the kernel's
    /// declarations or the streams have unequal lengths.
    pub fn run(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            inputs.len(),
            self.kernel.inputs().len(),
            "kernel `{}` expects {} input stream(s)",
            self.kernel.name(),
            self.kernel.inputs().len()
        );
        let n = inputs.first().map_or(0, |v| v.len());
        assert!(
            inputs.iter().all(|v| v.len() == n),
            "all input streams must have the same length"
        );
        let mut out = vec![Vec::with_capacity(n); self.kernel.outputs().len()];
        let mut sample = vec![0.0; inputs.len()];
        for a in 0..n {
            for (i, s) in inputs.iter().enumerate() {
                sample[i] = s[a];
            }
            let vals = self.step(&sample);
            for (o, v) in vals.into_iter().enumerate() {
                out[o].push(v);
            }
        }
        out
    }

    /// Executes a single activation with the given input values and returns
    /// the output values as `f64`.
    pub fn step(&mut self, input_vals: &[f64]) -> Vec<f64> {
        self.epoch = self.epoch.wrapping_add(1);
        let body: &[Stmt] = self.kernel.body();
        self.exec_stmts(body, input_vals);
        let res = self.outputs.iter().map(|&v| self.sem.to_f64(v)).collect();
        self.activation += 1;
        res
    }

    /// Resets arrays, variables and counters to the initial state.
    pub fn reset(&mut self) {
        for arr in &mut self.arrays {
            for v in arr.iter_mut() {
                *v = self.sem.zero();
            }
        }
        for v in &mut self.vars {
            *v = self.sem.zero();
        }
        self.activation = 0;
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], input_vals: &[f64]) {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    let val = self.eval(*e, input_vals);
                    self.vars[v.index()] = val;
                }
                Stmt::Store(a, ix, e) => {
                    let val = self.eval(*e, input_vals);
                    let val = self.sem.store(*a, val);
                    let idx = self.resolve_index(ix, a.index());
                    self.arrays[a.index()][idx] = val;
                }
                Stmt::ShiftIn(a, e) => {
                    let val = self.eval(*e, input_vals);
                    let val = self.sem.store(*a, val);
                    let arr = &mut self.arrays[a.index()];
                    for i in (1..arr.len()).rev() {
                        arr[i] = arr[i - 1];
                    }
                    arr[0] = val;
                }
                Stmt::Output(idx, e) => {
                    let val = self.eval(*e, input_vals);
                    self.outputs[*idx] = val;
                }
                Stmt::For { var, count, body } => {
                    for trip in 0..*count {
                        self.loop_env.insert(*var, trip as i64);
                        self.exec_stmts(body, input_vals);
                    }
                    self.loop_env.remove(var);
                }
            }
        }
    }

    fn ctx(&mut self, e: ExprId) -> ExecCtx {
        let slot = &mut self.exec_counts[e.index()];
        if slot.0 != self.epoch {
            *slot = (self.epoch, 0);
        }
        let exec = slot.1;
        slot.1 += 1;
        ExecCtx {
            activation: self.activation,
            exec,
        }
    }

    fn index_env(&self, ix: &crate::types::IndexExpr) -> i64 {
        ix.eval(&|l| self.loop_env.get(&l).copied().unwrap_or(0))
    }

    fn resolve_index(&self, ix: &crate::types::IndexExpr, array: usize) -> usize {
        let len = self.arrays[array].len() as i64;
        self.index_env(ix).rem_euclid(len) as usize
    }

    fn eval(&mut self, e: ExprId, input_vals: &[f64]) -> S::Value {
        let kernel = self.kernel;
        match kernel.expr(e) {
            ExprNode::Const(v) => {
                let v = *v;
                let ctx = self.ctx(e);
                self.sem.constant(ctx, e, v)
            }
            ExprNode::ReadVar(v) => {
                let val = self.vars[v.index()];
                let ctx = self.ctx(e);
                self.sem.var_use(ctx, e, val)
            }
            ExprNode::ReadInput(i) => {
                let i = *i;
                let ctx = self.ctx(e);
                self.sem.input(ctx, e, i, input_vals[i.index()])
            }
            ExprNode::LoadParam(p, ix) => {
                let p = *p;
                let idx = self.index_env(ix);
                let raw = kernel.param_value(p, idx);
                let ctx = self.ctx(e);
                self.sem.param(ctx, e, p, idx, raw)
            }
            ExprNode::LoadArray(a, ix) => {
                let idx = self.resolve_index(ix, a.index());
                let stored = self.arrays[a.index()][idx];
                let ctx = self.ctx(e);
                self.sem.load(ctx, e, stored)
            }
            ExprNode::Unary(op, a) => {
                let (op, a) = (*op, *a);
                let av = self.eval(a, input_vals);
                let ctx = self.ctx(e);
                self.sem.un(ctx, e, op, av)
            }
            ExprNode::Bin(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let av = self.eval(a, input_vals);
                let bv = self.eval(b, input_vals);
                let ctx = self.ctx(e);
                self.sem.bin(ctx, e, op, av, bv)
            }
        }
    }
}

/// One pending impulse of the batched multi-impulse executor: `amount`
/// is added to the value `target` produces at execution instance
/// (`activation`, `exec`) — or at *every* execution when both are
/// `u32::MAX`, the always-on mode coefficient-sensitivity measurement
/// uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpulseChannel {
    /// Expression whose value receives the impulse.
    pub target: ExprId,
    /// Activation index the impulse fires in (`u32::MAX` = every).
    pub activation: u32,
    /// Execution instance within the activation (`u32::MAX` = every).
    pub exec: u32,
    /// Offset added to the targeted value.
    pub amount: f64,
}

/// Channel-parallel float executor: one simulation sweep carries a lane
/// of state per [`ImpulseChannel`], in structure-of-arrays layout
/// (`state[elem * lanes + lane]`).
///
/// The kernel is compiled once into a linear **tape** — control flow is
/// static, so loops unroll into a fixed entry sequence with array
/// indices, parameter values and execution-instance ids resolved at
/// build time. Each [`step`](Self::step) replays the tape: per-node
/// arithmetic runs lane by lane on contiguous `f64` rows of a value
/// stack, performing exactly the floating-point operation sequence of a
/// solo [`Executor`] run under an impulse-injecting semantics. Per-lane
/// results are therefore **bitwise identical** to solo runs, at a
/// fraction of the interpreter overhead.
///
/// A lane's values can deviate from the impulse-free baseline only where
/// an impulse was injected and only downstream of it — its source's
/// influence *cone*. The executor exploits that sparsity dynamically:
/// every value row and state element carries the contiguous lane range
/// (*deviation hull*) that may differ from the baseline, seeded by the
/// injected impulses, widened through operators, and narrowed again when
/// state is overwritten by baseline-valued data. One scalar **baseline
/// lane** runs the same operation sequence impulse-free; lanes outside a
/// hull are never computed or stored — they are, bitwise, the baseline
/// value — which keeps the restricted sweep bitwise identical to a dense
/// one while doing work proportional to actual deviations. Sorting
/// channels so that lanes with overlapping cones sit next to each other
/// (see [`ConeIndex`]) keeps the hulls tight.
///
/// Lanes whose response has died out are retired with
/// [`retain`](Self::retain); the survivors are compacted so inner loops
/// stay dense.
#[derive(Debug)]
pub struct BatchExecutor<'k> {
    kernel: std::marker::PhantomData<&'k Kernel>,
    /// Live channels, parallel to lanes.
    channels: Vec<ImpulseChannel>,
    /// Original channel index of each live lane.
    ids: Vec<usize>,
    tape: Vec<TapeEntry>,
    arrays: Vec<Vec<f64>>,
    vars: Vec<f64>,
    outputs: Vec<f64>,
    /// Baseline (impulse-free) state: one scalar per state element.
    arrays_base: Vec<Vec<f64>>,
    vars_base: Vec<f64>,
    outputs_base: Vec<f64>,
    /// Lane range `[lo, hi)` the element's last writer actually stored;
    /// every lane outside it is baseline-valued (the row slots there may
    /// be stale and are never read). Empty at the zeroed initial state.
    arrays_hull: Vec<Vec<(u32, u32)>>,
    vars_hull: Vec<(u32, u32)>,
    /// Evaluation value stack: `max_stack` rows of `lanes` values.
    stack: Vec<f64>,
    base_stack: Vec<f64>,
    /// Deviation hull of each live stack row (scratch, parallel to the
    /// stack rows).
    slot_hull: Vec<(u32, u32)>,
    /// Lanes targeting each expression (indexed by `ExprId::index`).
    by_expr: Vec<Vec<usize>>,
    activation: u32,
}

/// One tape entry: an expression evaluation (pushes a row) or a
/// statement effect (pops the root row into state).
#[derive(Debug, Clone, Copy)]
struct TapeEntry {
    op: TapeOp,
    /// Arena index of the expression this entry evaluates (for value
    /// entries) or of the statement's root value (for state entries).
    expr: u32,
    /// Execution instance of `expr` within one activation.
    exec: u32,
    /// Some channel targets `expr` (kept in sync with the live channel
    /// set, so the common no-impulse entry skips the lookup).
    poke: bool,
}

#[derive(Debug, Clone, Copy)]
enum TapeOp {
    Const(f64),
    ReadVar(u32),
    ReadInput(u32),
    /// Parameter value, resolved at tape-build time.
    LoadParam(f64),
    /// Array and element index, resolved at tape-build time.
    LoadArray(u32, u32),
    Neg,
    Bin(BinOp),
    /// Fused `Bin` + `AssignVar`: the result row is computed straight
    /// into the variable's state row.
    BinAssign(BinOp, u32),
    /// Fused `v = op(ReadVar(v), b)` (the accumulator pattern): operand
    /// `a` is the variable's own state row, updated in place — the read
    /// copy disappears entirely.
    AccumVar(BinOp, u32),
    AssignVar(u32),
    StoreArr(u32, u32),
    ShiftInArr(u32),
    SetOut(u32),
}

struct Tape {
    entries: Vec<TapeEntry>,
    max_stack: usize,
}

/// Flattens the kernel into a tape: loops are unrolled, indices and
/// parameter values resolved, and per-expression execution-instance ids
/// assigned exactly as the epoch counters of a solo run would.
///
/// `poked[e]` flags expressions some impulse channel targets; fusions
/// that would drop an expression's tape entry are suppressed for them
/// (the entry is where the impulse is injected).
fn build_tape(kernel: &Kernel, poked: &[bool]) -> Tape {
    struct B<'a> {
        kernel: &'a Kernel,
        poked: &'a [bool],
        env: HashMap<LoopId, i64>,
        counts: Vec<u32>,
        entries: Vec<TapeEntry>,
        sp: usize,
        max_sp: usize,
    }
    impl B<'_> {
        fn index(&self, ix: &crate::types::IndexExpr) -> i64 {
            ix.eval(&|l| self.env.get(&l).copied().unwrap_or(0))
        }
        fn value(&mut self, op: TapeOp, e: ExprId, pushes: bool) {
            let exec = self.counts[e.index()];
            self.counts[e.index()] += 1;
            self.entries.push(TapeEntry {
                op,
                expr: e.index() as u32,
                exec,
                poke: false,
            });
            if pushes {
                self.sp += 1;
                self.max_sp = self.max_sp.max(self.sp);
            }
        }
        fn tree(&mut self, e: ExprId) {
            match self.kernel.expr(e) {
                ExprNode::Const(v) => self.value(TapeOp::Const(*v), e, true),
                ExprNode::ReadVar(v) => self.value(TapeOp::ReadVar(v.index() as u32), e, true),
                ExprNode::ReadInput(i) => self.value(TapeOp::ReadInput(i.index() as u32), e, true),
                ExprNode::LoadParam(p, ix) => {
                    let raw = self.kernel.param_value(*p, self.index(ix));
                    self.value(TapeOp::LoadParam(raw), e, true);
                }
                ExprNode::LoadArray(a, ix) => {
                    let len = self.kernel.arrays()[a.index()].len as i64;
                    let idx = self.index(ix).rem_euclid(len) as u32;
                    self.value(TapeOp::LoadArray(a.index() as u32, idx), e, true);
                }
                ExprNode::Unary(UnOp::Neg, a) => {
                    let a = *a;
                    self.tree(a);
                    self.value(TapeOp::Neg, e, false);
                }
                ExprNode::Bin(op, a, b) => {
                    let (op, a, b) = (*op, *a, *b);
                    self.tree(a);
                    self.tree(b);
                    self.value(TapeOp::Bin(op), e, false);
                    self.sp -= 1;
                }
            }
        }
        fn root(&mut self, op: TapeOp, e: ExprId) {
            self.entries.push(TapeEntry {
                op,
                expr: e.index() as u32,
                exec: 0,
                poke: false,
            });
            self.sp -= 1;
        }
        fn stmts(&mut self, stmts: &[Stmt]) {
            for s in stmts {
                match s {
                    Stmt::Assign(v, e) => {
                        // Accumulator fusion: `v = op(v, b)` evaluates in
                        // place on the variable's state row, skipping the
                        // read copy. The read's tape entry disappears, so
                        // only fuse when no impulse targets it (variable
                        // reads never produce noise, so in practice
                        // always).
                        if let ExprNode::Bin(op, a, bx) = self.kernel.expr(*e) {
                            if let ExprNode::ReadVar(av) = self.kernel.expr(*a) {
                                if av == v && !self.poked[a.index()] {
                                    let (op, bx) = (*op, *bx);
                                    self.tree(bx);
                                    self.value(TapeOp::AccumVar(op, v.index() as u32), *e, false);
                                    self.sp -= 1;
                                    continue;
                                }
                            }
                        }
                        self.tree(*e);
                        // Peephole: a binary root writes its result row
                        // straight into the variable state.
                        let last = self.entries.last_mut().expect("tree emits entries");
                        if let TapeOp::Bin(op) = last.op {
                            last.op = TapeOp::BinAssign(op, v.index() as u32);
                            self.sp -= 1;
                        } else {
                            self.root(TapeOp::AssignVar(v.index() as u32), *e);
                        }
                    }
                    Stmt::Store(a, ix, e) => {
                        let len = self.kernel.arrays()[a.index()].len as i64;
                        let idx = self.index(ix).rem_euclid(len) as u32;
                        self.tree(*e);
                        self.root(TapeOp::StoreArr(a.index() as u32, idx), *e);
                    }
                    Stmt::ShiftIn(a, e) => {
                        self.tree(*e);
                        self.root(TapeOp::ShiftInArr(a.index() as u32), *e);
                    }
                    Stmt::Output(o, e) => {
                        self.tree(*e);
                        self.root(TapeOp::SetOut(*o as u32), *e);
                    }
                    Stmt::For { var, count, body } => {
                        for trip in 0..*count {
                            self.env.insert(*var, trip as i64);
                            self.stmts(body);
                        }
                        self.env.remove(var);
                    }
                }
            }
        }
    }
    let mut b = B {
        kernel,
        poked,
        env: HashMap::new(),
        counts: vec![0; kernel.expr_count()],
        entries: Vec::new(),
        sp: 0,
        max_sp: 0,
    };
    b.stmts(kernel.body());
    debug_assert_eq!(b.sp, 0);
    Tape {
        entries: b.entries,
        max_stack: b.max_sp,
    }
}

/// Applies a binary operation lane-wise over the union span of the two
/// operands' deviation hulls, reading lanes outside an operand's hull
/// from its baseline scalar, writing the result in place over `a`'s row.
/// Returns the result's deviation hull. Lanes in the span covered by
/// neither hull compute `f(abase, bbase)` — exactly the result baseline,
/// so the returned (convex) hull stays sound.
#[inline]
fn seg_bin_inplace(
    a: &mut [f64],
    ah: (u32, u32),
    abase: f64,
    b: &[f64],
    bh: (u32, u32),
    bbase: f64,
    f: impl Fn(f64, f64) -> f64,
) -> (u32, u32) {
    let a_empty = ah.0 >= ah.1;
    let b_empty = bh.0 >= bh.1;
    if a_empty && b_empty {
        return (0, 0);
    }
    if a_empty {
        for i in bh.0 as usize..bh.1 as usize {
            a[i] = f(abase, b[i]);
        }
        return bh;
    }
    if b_empty {
        for x in &mut a[ah.0 as usize..ah.1 as usize] {
            *x = f(*x, bbase);
        }
        return ah;
    }
    if ah == bh {
        for i in ah.0 as usize..ah.1 as usize {
            a[i] = f(a[i], b[i]);
        }
        return ah;
    }
    let lo = ah.0.min(bh.0);
    let hi = ah.1.max(bh.1);
    for i in lo as usize..hi as usize {
        let x = if (i as u32) >= ah.0 && (i as u32) < ah.1 {
            a[i]
        } else {
            abase
        };
        let y = if (i as u32) >= bh.0 && (i as u32) < bh.1 {
            b[i]
        } else {
            bbase
        };
        a[i] = f(x, y);
    }
    (lo, hi)
}

/// [`seg_bin_inplace`] writing into a separate destination row (a state
/// row for the fused assign forms).
#[inline]
#[allow(clippy::too_many_arguments)]
fn seg_bin_to(
    dst: &mut [f64],
    a: &[f64],
    ah: (u32, u32),
    abase: f64,
    b: &[f64],
    bh: (u32, u32),
    bbase: f64,
    f: impl Fn(f64, f64) -> f64,
) -> (u32, u32) {
    let a_empty = ah.0 >= ah.1;
    let b_empty = bh.0 >= bh.1;
    if a_empty && b_empty {
        return (0, 0);
    }
    let lo = if a_empty {
        bh.0
    } else if b_empty {
        ah.0
    } else {
        ah.0.min(bh.0)
    };
    let hi = if a_empty {
        bh.1
    } else if b_empty {
        ah.1
    } else {
        ah.1.max(bh.1)
    };
    if ah == (lo, hi) && bh == (lo, hi) {
        for i in lo as usize..hi as usize {
            dst[i] = f(a[i], b[i]);
        }
        return (lo, hi);
    }
    for i in lo as usize..hi as usize {
        let x = if (i as u32) >= ah.0 && (i as u32) < ah.1 {
            a[i]
        } else {
            abase
        };
        let y = if (i as u32) >= bh.0 && (i as u32) < bh.1 {
            b[i]
        } else {
            bbase
        };
        dst[i] = f(x, y);
    }
    (lo, hi)
}

/// Applies the matching impulses of `lanes` to `row`, materialising any
/// poked lane outside the current deviation hull (gap lanes are filled
/// with the baseline they provably hold). Returns the widened hull —
/// the batched equivalent of the solo impulse semantics' per-value poke.
#[inline]
fn poke_lanes(
    lanes: &[usize],
    channels: &[ImpulseChannel],
    activation: u32,
    exec: u32,
    row: &mut [f64],
    mut h: (u32, u32),
    base: f64,
) -> (u32, u32) {
    for &lane in lanes {
        let ch = &channels[lane];
        let always = ch.exec == u32::MAX && ch.activation == u32::MAX;
        if always || (exec == ch.exec && activation == ch.activation) {
            let p = lane as u32;
            if h.0 >= h.1 {
                row[lane] = base;
                h = (p, p + 1);
            } else if p < h.0 {
                row[lane..h.0 as usize].fill(base);
                h.0 = p;
            } else if p >= h.1 {
                row[h.1 as usize..=lane].fill(base);
                h.1 = p + 1;
            }
            row[lane] += ch.amount;
        }
    }
    h
}

/// Writes a popped root row into a full state row: hull lanes from the
/// row, everything else (provably baseline-valued) from the scalar.
#[inline]
fn write_state(dst: &mut [f64], row: &[f64], base: f64, own: (u32, u32)) {
    let (olo, ohi) = (own.0 as usize, own.1 as usize);
    dst[..olo].fill(base);
    dst[olo..ohi].copy_from_slice(&row[olo..ohi]);
    dst[ohi..].fill(base);
}

impl<'k> BatchExecutor<'k> {
    /// Creates a batch executor with zeroed state, one lane per channel.
    pub fn new(kernel: &'k Kernel, channels: Vec<ImpulseChannel>) -> Self {
        Self::make(kernel, channels)
    }

    /// Creates a batch executor for channels packed with the help of a
    /// [`ConeIndex`] (sorting lanes so overlapping cones sit together
    /// keeps the deviation hulls tight). Execution is identical to
    /// [`new`](Self::new) — the index only validates compatibility here.
    pub fn with_cone(
        kernel: &'k Kernel,
        channels: Vec<ImpulseChannel>,
        cone: &'k ConeIndex,
    ) -> Self {
        assert_eq!(
            cone.expr_count(),
            kernel.expr_count(),
            "cone index built for a different kernel"
        );
        Self::make(kernel, channels)
    }

    fn make(kernel: &'k Kernel, channels: Vec<ImpulseChannel>) -> Self {
        let l = channels.len();
        let mut poked = vec![false; kernel.expr_count()];
        for ch in &channels {
            poked[ch.target.index()] = true;
        }
        let tape = build_tape(kernel, &poked);
        let mut ex = BatchExecutor {
            kernel: std::marker::PhantomData,
            channels,
            ids: (0..l).collect(),
            arrays: kernel
                .arrays()
                .iter()
                .map(|a| vec![0.0; a.len * l])
                .collect(),
            vars: vec![0.0; kernel.vars().len() * l],
            outputs: vec![0.0; kernel.outputs().len() * l],
            arrays_base: kernel.arrays().iter().map(|a| vec![0.0; a.len]).collect(),
            vars_base: vec![0.0; kernel.vars().len()],
            outputs_base: vec![0.0; kernel.outputs().len()],
            arrays_hull: kernel
                .arrays()
                .iter()
                .map(|a| vec![(0, 0); a.len])
                .collect(),
            vars_hull: vec![(0, 0); kernel.vars().len()],
            stack: vec![0.0; tape.max_stack * l],
            base_stack: vec![0.0; tape.max_stack],
            slot_hull: vec![(0, 0); tape.max_stack],
            tape: tape.entries,
            by_expr: vec![Vec::new(); kernel.expr_count()],
            activation: 0,
        };
        ex.rebuild_by_expr();
        ex
    }

    /// Number of live lanes.
    pub fn lanes(&self) -> usize {
        self.ids.len()
    }

    /// Original channel index of each live lane.
    pub fn channel_ids(&self) -> &[usize] {
        &self.ids
    }

    /// Output values after the last [`step`](Self::step), laid out
    /// `outputs[output * lanes + lane]`.
    pub fn outputs(&self) -> &[f64] {
        &self.outputs
    }

    /// Baseline (impulse-free) output values after the last step — the
    /// trajectory a solo [`Executor`] fed the same inputs produces,
    /// bitwise.
    pub fn outputs_base(&self) -> &[f64] {
        &self.outputs_base
    }

    /// Retires lanes with `keep[lane] == false` and compacts the state
    /// so the surviving lanes stay contiguous.
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.ids.len());
        let old = self.ids.len();
        let kept: Vec<usize> = (0..old).filter(|&i| keep[i]).collect();
        if kept.len() == old {
            return;
        }
        compact_lanes(&mut self.vars, old, &kept);
        compact_lanes(&mut self.outputs, old, &kept);
        for arr in &mut self.arrays {
            compact_lanes(arr, old, &kept);
        }
        // Kept lanes inside a stored write hull stay contiguous after
        // compaction; remap each hull by rank (kept lanes below bound).
        let mut rank = vec![0u32; old + 1];
        for i in 0..old {
            rank[i + 1] = rank[i] + keep[i] as u32;
        }
        for h in &mut self.vars_hull {
            *h = (rank[h.0 as usize], rank[h.1 as usize]);
        }
        for hulls in &mut self.arrays_hull {
            for h in hulls {
                *h = (rank[h.0 as usize], rank[h.1 as usize]);
            }
        }
        self.channels = kept.iter().map(|&i| self.channels[i]).collect();
        self.ids = kept.iter().map(|&i| self.ids[i]).collect();
        self.rebuild_by_expr();
    }

    fn rebuild_by_expr(&mut self) {
        for v in &mut self.by_expr {
            v.clear();
        }
        for (lane, ch) in self.channels.iter().enumerate() {
            self.by_expr[ch.target.index()].push(lane);
        }
        for en in &mut self.tape {
            en.poke = !self.by_expr[en.expr as usize].is_empty();
        }
    }

    /// Executes one activation with the given input values (shared by
    /// all lanes; only the injected impulses differ per lane).
    ///
    /// Every value row carries its deviation hull on `slot_hull`: the
    /// contiguous lane range that may differ from the baseline scalar.
    /// Lanes outside a hull hold the baseline bitwise (the row slots
    /// there are stale and never read), so each entry touches only the
    /// lanes an impulse actually reaches.
    pub fn step(&mut self, input_vals: &[f64]) {
        let l = self.ids.len();
        let mut stack = std::mem::take(&mut self.stack);
        let mut bstack = std::mem::take(&mut self.base_stack);
        let mut shull = std::mem::take(&mut self.slot_hull);
        let mut sp = 0usize;
        for ti in 0..self.tape.len() {
            let en = self.tape[ti];
            let eix = en.expr as usize;
            match en.op {
                TapeOp::Const(_) | TapeOp::ReadInput(_) | TapeOp::LoadParam(_) => {
                    let v = match en.op {
                        TapeOp::Const(c) => c,
                        TapeOp::ReadInput(i) => input_vals[i as usize],
                        TapeOp::LoadParam(r) => r,
                        _ => unreachable!(),
                    };
                    bstack[sp] = v;
                    // A leaf deviates from its baseline only where poked.
                    shull[sp] = if en.poke {
                        let row = &mut stack[sp * l..sp * l + l];
                        poke_lanes(
                            &self.by_expr[eix],
                            &self.channels,
                            self.activation,
                            en.exec,
                            row,
                            (0, 0),
                            v,
                        )
                    } else {
                        (0, 0)
                    };
                    sp += 1;
                }
                TapeOp::ReadVar(v) => {
                    let v = v as usize;
                    let base = self.vars_base[v];
                    bstack[sp] = base;
                    let h = self.vars_hull[v];
                    if h.0 < h.1 {
                        let (lo, hi) = (h.0 as usize, h.1 as usize);
                        stack[sp * l + lo..sp * l + hi]
                            .copy_from_slice(&self.vars[v * l + lo..v * l + hi]);
                    }
                    // Variable reads pass through unchanged (no poke):
                    // the solo impulse semantics never perturbs `var_use`.
                    shull[sp] = h;
                    sp += 1;
                }
                TapeOp::LoadArray(a, elem) => {
                    let (a, elem) = (a as usize, elem as usize);
                    let base = self.arrays_base[a][elem];
                    bstack[sp] = base;
                    let mut h = self.arrays_hull[a][elem];
                    if h.0 < h.1 {
                        let (lo, hi) = (h.0 as usize, h.1 as usize);
                        stack[sp * l + lo..sp * l + hi]
                            .copy_from_slice(&self.arrays[a][elem * l + lo..elem * l + hi]);
                    }
                    if en.poke {
                        h = poke_lanes(
                            &self.by_expr[eix],
                            &self.channels,
                            self.activation,
                            en.exec,
                            &mut stack[sp * l..sp * l + l],
                            h,
                            base,
                        );
                    }
                    shull[sp] = h;
                    sp += 1;
                }
                TapeOp::Neg => {
                    let h = shull[sp - 1];
                    let row = &mut stack[(sp - 1) * l..(sp - 1) * l + l];
                    for x in &mut row[h.0 as usize..h.1 as usize] {
                        *x = -*x;
                    }
                    let base = -bstack[sp - 1];
                    bstack[sp - 1] = base;
                    shull[sp - 1] = if en.poke {
                        poke_lanes(
                            &self.by_expr[eix],
                            &self.channels,
                            self.activation,
                            en.exec,
                            row,
                            h,
                            base,
                        )
                    } else {
                        h
                    };
                }
                TapeOp::Bin(op) => {
                    let (head, tail) = stack.split_at_mut((sp - 1) * l);
                    let arow = &mut head[(sp - 2) * l..(sp - 2) * l + l];
                    let brow = &tail[..l];
                    let (ah, bh) = (shull[sp - 2], shull[sp - 1]);
                    let (abase, bbase) = (bstack[sp - 2], bstack[sp - 1]);
                    let h = match op {
                        BinOp::Add => {
                            seg_bin_inplace(arow, ah, abase, brow, bh, bbase, |x, y| x + y)
                        }
                        BinOp::Sub => {
                            seg_bin_inplace(arow, ah, abase, brow, bh, bbase, |x, y| x - y)
                        }
                        BinOp::Mul => {
                            seg_bin_inplace(arow, ah, abase, brow, bh, bbase, |x, y| x * y)
                        }
                    };
                    let base = match op {
                        BinOp::Add => abase + bbase,
                        BinOp::Sub => abase - bbase,
                        BinOp::Mul => abase * bbase,
                    };
                    bstack[sp - 2] = base;
                    shull[sp - 2] = if en.poke {
                        poke_lanes(
                            &self.by_expr[eix],
                            &self.channels,
                            self.activation,
                            en.exec,
                            arow,
                            h,
                            base,
                        )
                    } else {
                        h
                    };
                    sp -= 1;
                }
                TapeOp::BinAssign(op, v) => {
                    let v = v as usize;
                    let arow = &stack[(sp - 2) * l..(sp - 2) * l + l];
                    let brow = &stack[(sp - 1) * l..(sp - 1) * l + l];
                    let (ah, bh) = (shull[sp - 2], shull[sp - 1]);
                    let (abase, bbase) = (bstack[sp - 2], bstack[sp - 1]);
                    let vrow = &mut self.vars[v * l..v * l + l];
                    let h = match op {
                        BinOp::Add => {
                            seg_bin_to(vrow, arow, ah, abase, brow, bh, bbase, |x, y| x + y)
                        }
                        BinOp::Sub => {
                            seg_bin_to(vrow, arow, ah, abase, brow, bh, bbase, |x, y| x - y)
                        }
                        BinOp::Mul => {
                            seg_bin_to(vrow, arow, ah, abase, brow, bh, bbase, |x, y| x * y)
                        }
                    };
                    let base = match op {
                        BinOp::Add => abase + bbase,
                        BinOp::Sub => abase - bbase,
                        BinOp::Mul => abase * bbase,
                    };
                    self.vars_base[v] = base;
                    self.vars_hull[v] = if en.poke {
                        poke_lanes(
                            &self.by_expr[eix],
                            &self.channels,
                            self.activation,
                            en.exec,
                            vrow,
                            h,
                            base,
                        )
                    } else {
                        h
                    };
                    sp -= 2;
                }
                TapeOp::AccumVar(op, v) => {
                    let v = v as usize;
                    let brow = &stack[(sp - 1) * l..(sp - 1) * l + l];
                    let bh = shull[sp - 1];
                    let bbase = bstack[sp - 1];
                    let vh = self.vars_hull[v];
                    let vbase = self.vars_base[v];
                    let vrow = &mut self.vars[v * l..v * l + l];
                    let h = match op {
                        BinOp::Add => {
                            seg_bin_inplace(vrow, vh, vbase, brow, bh, bbase, |x, y| x + y)
                        }
                        BinOp::Sub => {
                            seg_bin_inplace(vrow, vh, vbase, brow, bh, bbase, |x, y| x - y)
                        }
                        BinOp::Mul => {
                            seg_bin_inplace(vrow, vh, vbase, brow, bh, bbase, |x, y| x * y)
                        }
                    };
                    let base = match op {
                        BinOp::Add => vbase + bbase,
                        BinOp::Sub => vbase - bbase,
                        BinOp::Mul => vbase * bbase,
                    };
                    self.vars_base[v] = base;
                    self.vars_hull[v] = if en.poke {
                        poke_lanes(
                            &self.by_expr[eix],
                            &self.channels,
                            self.activation,
                            en.exec,
                            vrow,
                            h,
                            base,
                        )
                    } else {
                        h
                    };
                    sp -= 1;
                }
                TapeOp::AssignVar(v) => {
                    let v = v as usize;
                    let h = shull[sp - 1];
                    self.vars_base[v] = bstack[sp - 1];
                    self.vars_hull[v] = h;
                    let (lo, hi) = (h.0 as usize, h.1 as usize);
                    if lo < hi {
                        let row = &stack[(sp - 1) * l..(sp - 1) * l + l];
                        self.vars[v * l + lo..v * l + hi].copy_from_slice(&row[lo..hi]);
                    }
                    sp -= 1;
                }
                TapeOp::StoreArr(a, elem) => {
                    let (a, elem) = (a as usize, elem as usize);
                    let h = shull[sp - 1];
                    self.arrays_base[a][elem] = bstack[sp - 1];
                    self.arrays_hull[a][elem] = h;
                    let (lo, hi) = (h.0 as usize, h.1 as usize);
                    if lo < hi {
                        let row = &stack[(sp - 1) * l..(sp - 1) * l + l];
                        self.arrays[a][elem * l + lo..elem * l + hi].copy_from_slice(&row[lo..hi]);
                    }
                    sp -= 1;
                }
                TapeOp::ShiftInArr(a) => {
                    let a = a as usize;
                    let own = shull[sp - 1];
                    let base = bstack[sp - 1];
                    let elems = self.arrays_base[a].len();
                    let arr = &mut self.arrays[a];
                    let ab = &mut self.arrays_base[a];
                    let ah = &mut self.arrays_hull[a];
                    for i in (1..elems).rev() {
                        ab[i] = ab[i - 1];
                        let h = ah[i - 1];
                        ah[i] = h;
                        if h.0 < h.1 {
                            let (lo, hi) = (h.0 as usize, h.1 as usize);
                            arr.copy_within((i - 1) * l + lo..(i - 1) * l + hi, i * l + lo);
                        }
                    }
                    if elems > 0 {
                        ab[0] = base;
                        ah[0] = own;
                        let (lo, hi) = (own.0 as usize, own.1 as usize);
                        if lo < hi {
                            let row = &stack[(sp - 1) * l..(sp - 1) * l + l];
                            arr[lo..hi].copy_from_slice(&row[lo..hi]);
                        }
                    }
                    sp -= 1;
                }
                TapeOp::SetOut(o) => {
                    let o = o as usize;
                    let own = shull[sp - 1];
                    let base = bstack[sp - 1];
                    self.outputs_base[o] = base;
                    let dst = &mut self.outputs[o * l..o * l + l];
                    if own.0 >= own.1 {
                        dst.fill(base);
                    } else {
                        let row = &stack[(sp - 1) * l..(sp - 1) * l + l];
                        write_state(dst, row, base, own);
                    }
                    sp -= 1;
                }
            }
        }
        self.stack = stack;
        self.base_stack = bstack;
        self.slot_hull = shull;
        self.activation += 1;
    }
}

/// Compacts a lane-major vector (`v[elem * old_lanes + lane]`) down to
/// the lanes listed in `kept`, in place.
fn compact_lanes(v: &mut Vec<f64>, old_lanes: usize, kept: &[usize]) {
    if old_lanes == 0 {
        return;
    }
    let elems = v.len() / old_lanes;
    let new_lanes = kept.len();
    for elem in 0..elems {
        for (ni, &oi) in kept.iter().enumerate() {
            v[elem * new_lanes + ni] = v[elem * old_lanes + oi];
        }
    }
    v.truncate(elems * new_lanes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::IndexExpr;

    /// y[n] = 0.5*x[n] + 0.25*x[n-1]
    fn two_tap() -> Kernel {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let dl = b.array("dl", 2);
        let xv = b.read_input(x);
        b.shift_in(dl, xv);
        let c0 = b.constf(0.5);
        let l0 = b.load(dl, 0);
        let m0 = b.mul(c0, l0);
        let c1 = b.constf(0.25);
        let l1 = b.load(dl, 1);
        let m1 = b.mul(c1, l1);
        let s = b.add(m0, m1);
        b.set_output(y, s);
        b.finish()
    }

    #[test]
    fn fir_semantics() {
        let k = two_tap();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[vec![1.0, 0.0, 0.0, 2.0]]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![0.5, 0.25, 0.0, 1.0]);
    }

    #[test]
    fn reset_clears_state() {
        let k = two_tap();
        let mut ex = Executor::new(&k, FloatSem);
        let a = ex.run(&[vec![1.0, 1.0]]);
        ex.reset();
        let b = ex.run(&[vec![1.0, 1.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn exec_counter_distinguishes_loop_trips() {
        // Count executions of the loop-body add across one activation.
        #[derive(Default)]
        struct Counting {
            max_exec: u32,
        }
        impl Semantics for Counting {
            type Value = f64;
            fn zero(&mut self) -> f64 {
                0.0
            }
            fn constant(&mut self, _c: ExecCtx, _e: ExprId, v: f64) -> f64 {
                v
            }
            fn input(&mut self, _c: ExecCtx, _e: ExprId, _i: InputId, raw: f64) -> f64 {
                raw
            }
            fn param(&mut self, _c: ExecCtx, _e: ExprId, _p: ParamId, _i: i64, raw: f64) -> f64 {
                raw
            }
            fn load(&mut self, _c: ExecCtx, _e: ExprId, stored: f64) -> f64 {
                stored
            }
            fn un(&mut self, _c: ExecCtx, _e: ExprId, _op: UnOp, a: f64) -> f64 {
                -a
            }
            fn bin(&mut self, c: ExecCtx, _e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
                if matches!(op, BinOp::Add) {
                    self.max_exec = self.max_exec.max(c.exec);
                }
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                }
            }
            fn to_f64(&self, v: f64) -> f64 {
                v
            }
        }

        let mut b = KernelBuilder::new("loop");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let acc = b.var("acc");
        let z = b.constf(0.0);
        b.assign(acc, z);
        let i = b.begin_for(5);
        let av = b.read_var(acc);
        let xv = b.read_input(x);
        let s = b.add(av, xv);
        b.assign(acc, s);
        b.end_for(i);
        let r = b.read_var(acc);
        b.set_output(y, r);
        let k = b.finish();

        let mut ex = Executor::new(&k, Counting::default());
        let out = ex.run(&[vec![2.0]]);
        assert_eq!(out[0], vec![10.0]);
        assert_eq!(ex.semantics().max_exec, 4, "five executions, max index 4");
    }

    #[test]
    fn loop_env_indexes_arrays() {
        // for i in 0..4 { store a[i] = i-th const }; y = a[2]
        let mut b = KernelBuilder::new("ix");
        let y = b.output("y");
        let a = b.array("a", 4);
        let i = b.begin_for(4);
        // Store the loop counter by loading param table [0,1,2,3].
        let p = b.param("vals", vec![0.0, 1.0, 2.0, 3.0]);
        let pv = b.load_param_ix(p, IndexExpr::affine(i, 1, 0));
        b.store_ix(a, IndexExpr::affine(i, 1, 0), pv);
        b.end_for(i);
        let l = b.load(a, 2);
        b.set_output(y, l);
        let k = b.finish();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[]);
        // Wait: no inputs declared, so run with empty slice and length 0
        // activations — use step instead.
        assert!(out[0].is_empty());
        let vals = ex.step(&[]);
        assert_eq!(vals, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "input stream")]
    fn wrong_input_count_panics() {
        let k = two_tap();
        let mut ex = Executor::new(&k, FloatSem);
        let _ = ex.run(&[]);
    }

    /// The first expression of the given kind, for channel targeting.
    fn find_expr(k: &Kernel, pred: impl Fn(&ExprNode) -> bool) -> ExprId {
        k.exprs().find(|(_, n)| pred(n)).map(|(e, _)| e).unwrap()
    }

    #[test]
    fn zero_amount_batch_matches_float_reference() {
        let k = two_tap();
        let tgt = find_expr(&k, |n| matches!(n, ExprNode::Bin(BinOp::Add, _, _)));
        let chans = vec![
            ImpulseChannel {
                target: tgt,
                activation: 0,
                exec: 0,
                amount: 0.0,
            };
            3
        ];
        let mut batch = BatchExecutor::new(&k, chans);
        let mut solo = Executor::new(&k, FloatSem);
        for &x in &[1.0, 0.25, -0.5, 2.0] {
            batch.step(&[x]);
            let expect = solo.step(&[x]);
            let l = batch.lanes();
            for lane in 0..l {
                assert_eq!(batch.outputs()[lane].to_bits(), expect[0].to_bits());
            }
        }
    }

    #[test]
    fn batch_lanes_carry_independent_impulses() {
        let k = two_tap();
        let input = find_expr(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        // Lane 0: impulse at activation 0; lane 1: at activation 1.
        let chans = (0..2u32)
            .map(|a| ImpulseChannel {
                target: input,
                activation: a,
                exec: 0,
                amount: 1.0,
            })
            .collect();
        let mut batch = BatchExecutor::new(&k, chans);
        // Zero input: each lane sees the FIR's impulse response shifted
        // by its activation.
        let mut seen = Vec::new();
        for _ in 0..4 {
            batch.step(&[0.0]);
            seen.push([batch.outputs()[0], batch.outputs()[1]]);
        }
        assert_eq!(seen[0], [0.5, 0.0]);
        assert_eq!(seen[1], [0.25, 0.5]);
        assert_eq!(seen[2], [0.0, 0.25]);
        assert_eq!(seen[3], [0.0, 0.0]);
    }

    #[test]
    fn retain_compacts_surviving_lanes() {
        let k = two_tap();
        let input = find_expr(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        let chans = (0..3u32)
            .map(|a| ImpulseChannel {
                target: input,
                activation: a,
                exec: 0,
                amount: 1.0,
            })
            .collect();
        let mut batch = BatchExecutor::new(&k, chans);
        batch.step(&[0.0]);
        // Retire the middle lane; the survivors keep their trajectories.
        batch.retain(&[true, false, true]);
        assert_eq!(batch.lanes(), 2);
        assert_eq!(batch.channel_ids(), &[0, 2]);
        batch.step(&[0.0]);
        // Lane 0 (impulse at activation 0) is now at h[1] = 0.25; lane 2
        // (impulse at activation 2) has not fired yet.
        assert_eq!(batch.outputs()[0], 0.25);
        assert_eq!(batch.outputs()[1], 0.0);
        batch.step(&[0.0]);
        assert_eq!(batch.outputs()[1], 0.5, "lane 2 fires at activation 2");
    }
}
