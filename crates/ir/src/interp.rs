//! Generic kernel interpreter over pluggable value semantics.
//!
//! The same execution engine drives three different clients:
//!
//! * the floating-point reference ([`FloatSem`]),
//! * quantization-noise **gain analysis** (a perturbing semantics defined in
//!   `slpwlo-accuracy`),
//! * **bit-accurate fixed-point simulation** (a fixed-point semantics, also
//!   in `slpwlo-accuracy`).
//!
//! A [`Semantics`] receives every expression-node evaluation together with
//! an [`ExecCtx`] identifying *which dynamic execution instance* of the node
//! is running — the key piece needed to inject impulses per execution
//! instance during gain analysis.

use crate::kernel::{ExprNode, Kernel, Stmt};
use crate::types::{ArrayId, BinOp, ExprId, InputId, LoopId, ParamId, UnOp};
use std::collections::HashMap;

/// Identifies one dynamic execution of an expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecCtx {
    /// Index of the current activation (sample / pixel).
    pub activation: u32,
    /// How many times this expression has already executed within the
    /// current activation (0 for the first execution).
    pub exec: u32,
}

/// Value semantics plugged into the [`Executor`].
///
/// All methods receive the originating [`ExprId`] so implementations can
/// attach per-node behaviour (formats, noise sources). The default
/// implementations of [`var_use`](Semantics::var_use) and
/// [`store`](Semantics::store) pass values through unchanged.
pub trait Semantics {
    /// The runtime value representation.
    type Value: Copy;

    /// The value used to zero-initialise state arrays and variables.
    fn zero(&mut self) -> Self::Value;

    /// Materialises a literal constant.
    fn constant(&mut self, ctx: ExecCtx, e: ExprId, v: f64) -> Self::Value;

    /// Converts an incoming input sample.
    fn input(&mut self, ctx: ExecCtx, e: ExprId, input: InputId, raw: f64) -> Self::Value;

    /// Materialises a parameter-table constant.
    fn param(&mut self, ctx: ExecCtx, e: ExprId, p: ParamId, idx: i64, raw: f64) -> Self::Value;

    /// Observes a state-array load.
    fn load(&mut self, ctx: ExecCtx, e: ExprId, stored: Self::Value) -> Self::Value;

    /// Observes a variable read. Defaults to the identity.
    fn var_use(&mut self, _ctx: ExecCtx, _e: ExprId, v: Self::Value) -> Self::Value {
        v
    }

    /// Applies a unary operation.
    fn un(&mut self, ctx: ExecCtx, e: ExprId, op: UnOp, a: Self::Value) -> Self::Value;

    /// Applies a binary operation.
    fn bin(
        &mut self,
        ctx: ExecCtx,
        e: ExprId,
        op: BinOp,
        a: Self::Value,
        b: Self::Value,
    ) -> Self::Value;

    /// Transforms a value as it is written to a state array (e.g. to
    /// quantize it to the array's storage format). Defaults to the
    /// identity.
    fn store(&mut self, _array: ArrayId, v: Self::Value) -> Self::Value {
        v
    }

    /// Converts a value to `f64` for output collection and measurement.
    fn to_f64(&self, v: Self::Value) -> f64;
}

/// Plain IEEE-754 double-precision semantics: the reference behaviour
/// against which fixed-point implementations are compared.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloatSem;

impl Semantics for FloatSem {
    type Value = f64;

    fn zero(&mut self) -> f64 {
        0.0
    }

    fn constant(&mut self, _ctx: ExecCtx, _e: ExprId, v: f64) -> f64 {
        v
    }

    fn input(&mut self, _ctx: ExecCtx, _e: ExprId, _input: InputId, raw: f64) -> f64 {
        raw
    }

    fn param(&mut self, _ctx: ExecCtx, _e: ExprId, _p: ParamId, _idx: i64, raw: f64) -> f64 {
        raw
    }

    fn load(&mut self, _ctx: ExecCtx, _e: ExprId, stored: f64) -> f64 {
        stored
    }

    fn un(&mut self, _ctx: ExecCtx, _e: ExprId, op: UnOp, a: f64) -> f64 {
        match op {
            UnOp::Neg => -a,
        }
    }

    fn bin(&mut self, _ctx: ExecCtx, _e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
        match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        }
    }

    fn to_f64(&self, v: f64) -> f64 {
        v
    }
}

/// Executes a kernel over a workload of activations.
#[derive(Debug)]
pub struct Executor<'k, S: Semantics> {
    kernel: &'k Kernel,
    sem: S,
    arrays: Vec<Vec<S::Value>>,
    vars: Vec<S::Value>,
    outputs: Vec<S::Value>,
    /// Per-expression execution counters for the current activation, using
    /// an epoch scheme to avoid clearing between activations.
    exec_counts: Vec<(u32, u32)>,
    epoch: u32,
    activation: u32,
    loop_env: HashMap<LoopId, i64>,
}

impl<'k, S: Semantics> Executor<'k, S> {
    /// Creates an executor with zeroed state.
    pub fn new(kernel: &'k Kernel, mut sem: S) -> Self {
        let arrays = kernel
            .arrays()
            .iter()
            .map(|a| {
                let z = sem.zero();
                vec![z; a.len]
            })
            .collect();
        let vars = (0..kernel.vars().len()).map(|_| sem.zero()).collect();
        let outputs = (0..kernel.outputs().len()).map(|_| sem.zero()).collect();
        Executor {
            kernel,
            sem,
            arrays,
            vars,
            outputs,
            exec_counts: vec![(0, 0); kernel.expr_count()],
            epoch: 0,
            activation: 0,
            loop_env: HashMap::new(),
        }
    }

    /// Access to the plugged semantics (e.g. to read accumulated noise
    /// statistics after a run).
    pub fn semantics(&self) -> &S {
        &self.sem
    }

    /// Mutable access to the plugged semantics.
    pub fn semantics_mut(&mut self) -> &mut S {
        &mut self.sem
    }

    /// The current per-element state of every array (delay lines, line
    /// buffers). Fix-point analyses need this: a value propagates
    /// through a delay line one slot per activation without touching
    /// any expression until it reaches a read index, so expression
    /// state alone cannot witness convergence.
    pub fn array_state(&self) -> &[Vec<S::Value>] {
        &self.arrays
    }

    /// Runs the kernel over `inputs[i][n]` (input `i`, activation `n`) and
    /// returns `outputs[o][n]` as `f64` via [`Semantics::to_f64`].
    ///
    /// # Panics
    ///
    /// Panics if the number of input streams does not match the kernel's
    /// declarations or the streams have unequal lengths.
    pub fn run(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            inputs.len(),
            self.kernel.inputs().len(),
            "kernel `{}` expects {} input stream(s)",
            self.kernel.name(),
            self.kernel.inputs().len()
        );
        let n = inputs.first().map_or(0, |v| v.len());
        assert!(
            inputs.iter().all(|v| v.len() == n),
            "all input streams must have the same length"
        );
        let mut out = vec![Vec::with_capacity(n); self.kernel.outputs().len()];
        let mut sample = vec![0.0; inputs.len()];
        for a in 0..n {
            for (i, s) in inputs.iter().enumerate() {
                sample[i] = s[a];
            }
            let vals = self.step(&sample);
            for (o, v) in vals.into_iter().enumerate() {
                out[o].push(v);
            }
        }
        out
    }

    /// Executes a single activation with the given input values and returns
    /// the output values as `f64`.
    pub fn step(&mut self, input_vals: &[f64]) -> Vec<f64> {
        self.epoch = self.epoch.wrapping_add(1);
        let body: &[Stmt] = self.kernel.body();
        self.exec_stmts(body, input_vals);
        let res = self.outputs.iter().map(|&v| self.sem.to_f64(v)).collect();
        self.activation += 1;
        res
    }

    /// Resets arrays, variables and counters to the initial state.
    pub fn reset(&mut self) {
        for arr in &mut self.arrays {
            for v in arr.iter_mut() {
                *v = self.sem.zero();
            }
        }
        for v in &mut self.vars {
            *v = self.sem.zero();
        }
        self.activation = 0;
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], input_vals: &[f64]) {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    let val = self.eval(*e, input_vals);
                    self.vars[v.index()] = val;
                }
                Stmt::Store(a, ix, e) => {
                    let val = self.eval(*e, input_vals);
                    let val = self.sem.store(*a, val);
                    let idx = self.resolve_index(ix, a.index());
                    self.arrays[a.index()][idx] = val;
                }
                Stmt::ShiftIn(a, e) => {
                    let val = self.eval(*e, input_vals);
                    let val = self.sem.store(*a, val);
                    let arr = &mut self.arrays[a.index()];
                    for i in (1..arr.len()).rev() {
                        arr[i] = arr[i - 1];
                    }
                    arr[0] = val;
                }
                Stmt::Output(idx, e) => {
                    let val = self.eval(*e, input_vals);
                    self.outputs[*idx] = val;
                }
                Stmt::For { var, count, body } => {
                    for trip in 0..*count {
                        self.loop_env.insert(*var, trip as i64);
                        self.exec_stmts(body, input_vals);
                    }
                    self.loop_env.remove(var);
                }
            }
        }
    }

    fn ctx(&mut self, e: ExprId) -> ExecCtx {
        let slot = &mut self.exec_counts[e.index()];
        if slot.0 != self.epoch {
            *slot = (self.epoch, 0);
        }
        let exec = slot.1;
        slot.1 += 1;
        ExecCtx {
            activation: self.activation,
            exec,
        }
    }

    fn index_env(&self, ix: &crate::types::IndexExpr) -> i64 {
        ix.eval(&|l| self.loop_env.get(&l).copied().unwrap_or(0))
    }

    fn resolve_index(&self, ix: &crate::types::IndexExpr, array: usize) -> usize {
        let len = self.arrays[array].len() as i64;
        self.index_env(ix).rem_euclid(len) as usize
    }

    fn eval(&mut self, e: ExprId, input_vals: &[f64]) -> S::Value {
        let kernel = self.kernel;
        match kernel.expr(e) {
            ExprNode::Const(v) => {
                let v = *v;
                let ctx = self.ctx(e);
                self.sem.constant(ctx, e, v)
            }
            ExprNode::ReadVar(v) => {
                let val = self.vars[v.index()];
                let ctx = self.ctx(e);
                self.sem.var_use(ctx, e, val)
            }
            ExprNode::ReadInput(i) => {
                let i = *i;
                let ctx = self.ctx(e);
                self.sem.input(ctx, e, i, input_vals[i.index()])
            }
            ExprNode::LoadParam(p, ix) => {
                let p = *p;
                let idx = self.index_env(ix);
                let raw = kernel.param_value(p, idx);
                let ctx = self.ctx(e);
                self.sem.param(ctx, e, p, idx, raw)
            }
            ExprNode::LoadArray(a, ix) => {
                let idx = self.resolve_index(ix, a.index());
                let stored = self.arrays[a.index()][idx];
                let ctx = self.ctx(e);
                self.sem.load(ctx, e, stored)
            }
            ExprNode::Unary(op, a) => {
                let (op, a) = (*op, *a);
                let av = self.eval(a, input_vals);
                let ctx = self.ctx(e);
                self.sem.un(ctx, e, op, av)
            }
            ExprNode::Bin(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let av = self.eval(a, input_vals);
                let bv = self.eval(b, input_vals);
                let ctx = self.ctx(e);
                self.sem.bin(ctx, e, op, av, bv)
            }
        }
    }
}

/// One pending impulse of the batched multi-impulse executor: `amount`
/// is added to the value `target` produces at execution instance
/// (`activation`, `exec`) — or at *every* execution when both are
/// `u32::MAX`, the always-on mode coefficient-sensitivity measurement
/// uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpulseChannel {
    /// Expression whose value receives the impulse.
    pub target: ExprId,
    /// Activation index the impulse fires in (`u32::MAX` = every).
    pub activation: u32,
    /// Execution instance within the activation (`u32::MAX` = every).
    pub exec: u32,
    /// Offset added to the targeted value.
    pub amount: f64,
}

/// Channel-parallel float executor: one simulation sweep carries a lane
/// of state per [`ImpulseChannel`], in structure-of-arrays layout
/// (`state[elem * lanes + lane]`).
///
/// Every lane performs exactly the floating-point operation sequence of
/// a solo [`Executor`] run under an impulse-injecting semantics: kernel
/// structure — statement dispatch, loop bookkeeping, index resolution,
/// execution counters — is walked once per batch and shared (control
/// flow is static, so it is identical across lanes), while the per-node
/// arithmetic runs lane by lane on contiguous `f64` rows. Per-lane
/// results are therefore **bitwise identical** to solo runs, at a
/// fraction of the interpreter overhead.
///
/// Lanes whose response has died out are retired with [`retain`]
/// (Self::retain); the survivors are compacted so inner loops stay
/// dense.
#[derive(Debug)]
pub struct BatchExecutor<'k> {
    kernel: &'k Kernel,
    /// Live channels, parallel to lanes.
    channels: Vec<ImpulseChannel>,
    /// Original channel index of each live lane.
    ids: Vec<usize>,
    arrays: Vec<Vec<f64>>,
    vars: Vec<f64>,
    outputs: Vec<f64>,
    exec_counts: Vec<(u32, u32)>,
    epoch: u32,
    activation: u32,
    loop_env: HashMap<LoopId, i64>,
    /// Lanes targeting each expression (indexed by `ExprId::index`).
    by_expr: Vec<Vec<usize>>,
    /// Reusable evaluation buffers, indexed by expression depth.
    scratch: Vec<Vec<f64>>,
}

impl<'k> BatchExecutor<'k> {
    /// Creates a batch executor with zeroed state, one lane per channel.
    pub fn new(kernel: &'k Kernel, channels: Vec<ImpulseChannel>) -> Self {
        let l = channels.len();
        let arrays = kernel
            .arrays()
            .iter()
            .map(|a| vec![0.0; a.len * l])
            .collect();
        let ids = (0..l).collect();
        let mut ex = BatchExecutor {
            kernel,
            channels,
            ids,
            arrays,
            vars: vec![0.0; kernel.vars().len() * l],
            outputs: vec![0.0; kernel.outputs().len() * l],
            exec_counts: vec![(0, 0); kernel.expr_count()],
            epoch: 0,
            activation: 0,
            loop_env: HashMap::new(),
            by_expr: vec![Vec::new(); kernel.expr_count()],
            scratch: Vec::new(),
        };
        ex.rebuild_by_expr();
        ex
    }

    /// Number of live lanes.
    pub fn lanes(&self) -> usize {
        self.ids.len()
    }

    /// Original channel index of each live lane.
    pub fn channel_ids(&self) -> &[usize] {
        &self.ids
    }

    /// Output values after the last [`step`](Self::step), laid out
    /// `outputs[output * lanes + lane]`.
    pub fn outputs(&self) -> &[f64] {
        &self.outputs
    }

    /// Executes one activation with the given input values (shared by
    /// all lanes; only the injected impulses differ per lane).
    pub fn step(&mut self, input_vals: &[f64]) {
        self.epoch = self.epoch.wrapping_add(1);
        self.exec_stmts(self.kernel.body(), input_vals);
        self.activation += 1;
    }

    /// Retires lanes with `keep[lane] == false` and compacts the state
    /// so the surviving lanes stay contiguous.
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.ids.len());
        let old = self.ids.len();
        let kept: Vec<usize> = (0..old).filter(|&i| keep[i]).collect();
        if kept.len() == old {
            return;
        }
        compact_lanes(&mut self.vars, old, &kept);
        compact_lanes(&mut self.outputs, old, &kept);
        for arr in &mut self.arrays {
            compact_lanes(arr, old, &kept);
        }
        self.channels = kept.iter().map(|&i| self.channels[i]).collect();
        self.ids = kept.iter().map(|&i| self.ids[i]).collect();
        self.rebuild_by_expr();
    }

    fn rebuild_by_expr(&mut self) {
        for v in &mut self.by_expr {
            v.clear();
        }
        for (lane, ch) in self.channels.iter().enumerate() {
            self.by_expr[ch.target.index()].push(lane);
        }
    }

    fn exec_stmts(&mut self, stmts: &'k [Stmt], input_vals: &[f64]) {
        let l = self.ids.len();
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    self.eval_into(*e, input_vals, 0);
                    let buf = std::mem::take(&mut self.scratch[0]);
                    self.vars[v.index() * l..(v.index() + 1) * l].copy_from_slice(&buf);
                    self.scratch[0] = buf;
                }
                Stmt::Store(a, ix, e) => {
                    self.eval_into(*e, input_vals, 0);
                    let buf = std::mem::take(&mut self.scratch[0]);
                    let idx = self.resolve_index(ix, a.index());
                    self.arrays[a.index()][idx * l..(idx + 1) * l].copy_from_slice(&buf);
                    self.scratch[0] = buf;
                }
                Stmt::ShiftIn(a, e) => {
                    self.eval_into(*e, input_vals, 0);
                    let buf = std::mem::take(&mut self.scratch[0]);
                    let arr = &mut self.arrays[a.index()];
                    let elems = arr.len() / l.max(1);
                    for i in (1..elems).rev() {
                        arr.copy_within((i - 1) * l..i * l, i * l);
                    }
                    arr[..l].copy_from_slice(&buf);
                    self.scratch[0] = buf;
                }
                Stmt::Output(idx, e) => {
                    self.eval_into(*e, input_vals, 0);
                    let buf = std::mem::take(&mut self.scratch[0]);
                    self.outputs[idx * l..(idx + 1) * l].copy_from_slice(&buf);
                    self.scratch[0] = buf;
                }
                Stmt::For { var, count, body } => {
                    for trip in 0..*count {
                        self.loop_env.insert(*var, trip as i64);
                        self.exec_stmts(body, input_vals);
                    }
                    self.loop_env.remove(var);
                }
            }
        }
    }

    fn ctx(&mut self, e: ExprId) -> ExecCtx {
        let slot = &mut self.exec_counts[e.index()];
        if slot.0 != self.epoch {
            *slot = (self.epoch, 0);
        }
        let exec = slot.1;
        slot.1 += 1;
        ExecCtx {
            activation: self.activation,
            exec,
        }
    }

    /// Applies the impulses of every channel targeting `e` whose
    /// execution instance matches — the batched equivalent of the solo
    /// impulse semantics' per-value poke.
    fn poke(&self, ctx: ExecCtx, e: ExprId, out: &mut [f64]) {
        for &lane in &self.by_expr[e.index()] {
            let ch = &self.channels[lane];
            let always = ch.exec == u32::MAX && ch.activation == u32::MAX;
            if always || (ctx.exec == ch.exec && ctx.activation == ch.activation) {
                out[lane] += ch.amount;
            }
        }
    }

    fn index_env(&self, ix: &crate::types::IndexExpr) -> i64 {
        ix.eval(&|l| self.loop_env.get(&l).copied().unwrap_or(0))
    }

    fn resolve_index(&self, ix: &crate::types::IndexExpr, array: usize) -> usize {
        let len = (self.arrays[array].len() / self.ids.len().max(1)) as i64;
        self.index_env(ix).rem_euclid(len) as usize
    }

    /// Evaluates `e` for every lane into `self.scratch[depth]`. Child
    /// operands use `depth + 1` / `depth + 2`; a child's own scratch
    /// needs stay above the buffers its siblings' results occupy.
    fn eval_into(&mut self, e: ExprId, input_vals: &[f64], depth: usize) {
        if self.scratch.len() < depth + 3 {
            self.scratch.resize_with(depth + 3, Vec::new);
        }
        let l = self.ids.len();
        let kernel = self.kernel;
        match kernel.expr(e) {
            ExprNode::Const(v) => {
                let v = *v;
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                out.resize(l, v);
                let ctx = self.ctx(e);
                self.poke(ctx, e, &mut out);
                self.scratch[depth] = out;
            }
            ExprNode::ReadVar(v) => {
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                out.extend_from_slice(&self.vars[v.index() * l..(v.index() + 1) * l]);
                let _ctx = self.ctx(e);
                // Variable reads pass through unchanged (no poke): the
                // solo impulse semantics never perturbs `var_use`.
                self.scratch[depth] = out;
            }
            ExprNode::ReadInput(i) => {
                let v = input_vals[i.index()];
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                out.resize(l, v);
                let ctx = self.ctx(e);
                self.poke(ctx, e, &mut out);
                self.scratch[depth] = out;
            }
            ExprNode::LoadParam(p, ix) => {
                let idx = self.index_env(ix);
                let raw = kernel.param_value(*p, idx);
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                out.resize(l, raw);
                let ctx = self.ctx(e);
                self.poke(ctx, e, &mut out);
                self.scratch[depth] = out;
            }
            ExprNode::LoadArray(a, ix) => {
                let idx = self.resolve_index(ix, a.index());
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                out.extend_from_slice(&self.arrays[a.index()][idx * l..(idx + 1) * l]);
                let ctx = self.ctx(e);
                self.poke(ctx, e, &mut out);
                self.scratch[depth] = out;
            }
            ExprNode::Unary(op, a) => {
                let (op, a) = (*op, *a);
                self.eval_into(a, input_vals, depth + 1);
                let av = std::mem::take(&mut self.scratch[depth + 1]);
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                match op {
                    UnOp::Neg => out.extend(av.iter().map(|&x| -x)),
                }
                let ctx = self.ctx(e);
                self.poke(ctx, e, &mut out);
                self.scratch[depth] = out;
                self.scratch[depth + 1] = av;
            }
            ExprNode::Bin(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                self.eval_into(a, input_vals, depth + 1);
                self.eval_into(b, input_vals, depth + 2);
                let av = std::mem::take(&mut self.scratch[depth + 1]);
                let bv = std::mem::take(&mut self.scratch[depth + 2]);
                let mut out = std::mem::take(&mut self.scratch[depth]);
                out.clear();
                match op {
                    BinOp::Add => out.extend(av.iter().zip(&bv).map(|(&x, &y)| x + y)),
                    BinOp::Sub => out.extend(av.iter().zip(&bv).map(|(&x, &y)| x - y)),
                    BinOp::Mul => out.extend(av.iter().zip(&bv).map(|(&x, &y)| x * y)),
                }
                let ctx = self.ctx(e);
                self.poke(ctx, e, &mut out);
                self.scratch[depth] = out;
                self.scratch[depth + 1] = av;
                self.scratch[depth + 2] = bv;
            }
        }
    }
}

/// Compacts a lane-major vector (`v[elem * old_lanes + lane]`) down to
/// the lanes listed in `kept`, in place.
fn compact_lanes(v: &mut Vec<f64>, old_lanes: usize, kept: &[usize]) {
    if old_lanes == 0 {
        return;
    }
    let elems = v.len() / old_lanes;
    let new_lanes = kept.len();
    for elem in 0..elems {
        for (ni, &oi) in kept.iter().enumerate() {
            v[elem * new_lanes + ni] = v[elem * old_lanes + oi];
        }
    }
    v.truncate(elems * new_lanes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::IndexExpr;

    /// y[n] = 0.5*x[n] + 0.25*x[n-1]
    fn two_tap() -> Kernel {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let dl = b.array("dl", 2);
        let xv = b.read_input(x);
        b.shift_in(dl, xv);
        let c0 = b.constf(0.5);
        let l0 = b.load(dl, 0);
        let m0 = b.mul(c0, l0);
        let c1 = b.constf(0.25);
        let l1 = b.load(dl, 1);
        let m1 = b.mul(c1, l1);
        let s = b.add(m0, m1);
        b.set_output(y, s);
        b.finish()
    }

    #[test]
    fn fir_semantics() {
        let k = two_tap();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[vec![1.0, 0.0, 0.0, 2.0]]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![0.5, 0.25, 0.0, 1.0]);
    }

    #[test]
    fn reset_clears_state() {
        let k = two_tap();
        let mut ex = Executor::new(&k, FloatSem);
        let a = ex.run(&[vec![1.0, 1.0]]);
        ex.reset();
        let b = ex.run(&[vec![1.0, 1.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn exec_counter_distinguishes_loop_trips() {
        // Count executions of the loop-body add across one activation.
        #[derive(Default)]
        struct Counting {
            max_exec: u32,
        }
        impl Semantics for Counting {
            type Value = f64;
            fn zero(&mut self) -> f64 {
                0.0
            }
            fn constant(&mut self, _c: ExecCtx, _e: ExprId, v: f64) -> f64 {
                v
            }
            fn input(&mut self, _c: ExecCtx, _e: ExprId, _i: InputId, raw: f64) -> f64 {
                raw
            }
            fn param(&mut self, _c: ExecCtx, _e: ExprId, _p: ParamId, _i: i64, raw: f64) -> f64 {
                raw
            }
            fn load(&mut self, _c: ExecCtx, _e: ExprId, stored: f64) -> f64 {
                stored
            }
            fn un(&mut self, _c: ExecCtx, _e: ExprId, _op: UnOp, a: f64) -> f64 {
                -a
            }
            fn bin(&mut self, c: ExecCtx, _e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
                if matches!(op, BinOp::Add) {
                    self.max_exec = self.max_exec.max(c.exec);
                }
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                }
            }
            fn to_f64(&self, v: f64) -> f64 {
                v
            }
        }

        let mut b = KernelBuilder::new("loop");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let acc = b.var("acc");
        let z = b.constf(0.0);
        b.assign(acc, z);
        let i = b.begin_for(5);
        let av = b.read_var(acc);
        let xv = b.read_input(x);
        let s = b.add(av, xv);
        b.assign(acc, s);
        b.end_for(i);
        let r = b.read_var(acc);
        b.set_output(y, r);
        let k = b.finish();

        let mut ex = Executor::new(&k, Counting::default());
        let out = ex.run(&[vec![2.0]]);
        assert_eq!(out[0], vec![10.0]);
        assert_eq!(ex.semantics().max_exec, 4, "five executions, max index 4");
    }

    #[test]
    fn loop_env_indexes_arrays() {
        // for i in 0..4 { store a[i] = i-th const }; y = a[2]
        let mut b = KernelBuilder::new("ix");
        let y = b.output("y");
        let a = b.array("a", 4);
        let i = b.begin_for(4);
        // Store the loop counter by loading param table [0,1,2,3].
        let p = b.param("vals", vec![0.0, 1.0, 2.0, 3.0]);
        let pv = b.load_param_ix(p, IndexExpr::affine(i, 1, 0));
        b.store_ix(a, IndexExpr::affine(i, 1, 0), pv);
        b.end_for(i);
        let l = b.load(a, 2);
        b.set_output(y, l);
        let k = b.finish();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[]);
        // Wait: no inputs declared, so run with empty slice and length 0
        // activations — use step instead.
        assert!(out[0].is_empty());
        let vals = ex.step(&[]);
        assert_eq!(vals, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "input stream")]
    fn wrong_input_count_panics() {
        let k = two_tap();
        let mut ex = Executor::new(&k, FloatSem);
        let _ = ex.run(&[]);
    }

    /// The first expression of the given kind, for channel targeting.
    fn find_expr(k: &Kernel, pred: impl Fn(&ExprNode) -> bool) -> ExprId {
        k.exprs().find(|(_, n)| pred(n)).map(|(e, _)| e).unwrap()
    }

    #[test]
    fn zero_amount_batch_matches_float_reference() {
        let k = two_tap();
        let tgt = find_expr(&k, |n| matches!(n, ExprNode::Bin(BinOp::Add, _, _)));
        let chans = vec![
            ImpulseChannel {
                target: tgt,
                activation: 0,
                exec: 0,
                amount: 0.0,
            };
            3
        ];
        let mut batch = BatchExecutor::new(&k, chans);
        let mut solo = Executor::new(&k, FloatSem);
        for &x in &[1.0, 0.25, -0.5, 2.0] {
            batch.step(&[x]);
            let expect = solo.step(&[x]);
            let l = batch.lanes();
            for lane in 0..l {
                assert_eq!(batch.outputs()[lane].to_bits(), expect[0].to_bits());
            }
        }
    }

    #[test]
    fn batch_lanes_carry_independent_impulses() {
        let k = two_tap();
        let input = find_expr(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        // Lane 0: impulse at activation 0; lane 1: at activation 1.
        let chans = (0..2u32)
            .map(|a| ImpulseChannel {
                target: input,
                activation: a,
                exec: 0,
                amount: 1.0,
            })
            .collect();
        let mut batch = BatchExecutor::new(&k, chans);
        // Zero input: each lane sees the FIR's impulse response shifted
        // by its activation.
        let mut seen = Vec::new();
        for _ in 0..4 {
            batch.step(&[0.0]);
            seen.push([batch.outputs()[0], batch.outputs()[1]]);
        }
        assert_eq!(seen[0], [0.5, 0.0]);
        assert_eq!(seen[1], [0.25, 0.5]);
        assert_eq!(seen[2], [0.0, 0.25]);
        assert_eq!(seen[3], [0.0, 0.0]);
    }

    #[test]
    fn retain_compacts_surviving_lanes() {
        let k = two_tap();
        let input = find_expr(&k, |n| matches!(n, ExprNode::ReadInput(_)));
        let chans = (0..3u32)
            .map(|a| ImpulseChannel {
                target: input,
                activation: a,
                exec: 0,
                amount: 1.0,
            })
            .collect();
        let mut batch = BatchExecutor::new(&k, chans);
        batch.step(&[0.0]);
        // Retire the middle lane; the survivors keep their trajectories.
        batch.retain(&[true, false, true]);
        assert_eq!(batch.lanes(), 2);
        assert_eq!(batch.channel_ids(), &[0, 2]);
        batch.step(&[0.0]);
        // Lane 0 (impulse at activation 0) is now at h[1] = 0.25; lane 2
        // (impulse at activation 2) has not fired yet.
        assert_eq!(batch.outputs()[0], 0.25);
        assert_eq!(batch.outputs()[1], 0.0);
        batch.step(&[0.0]);
        assert_eq!(batch.outputs()[1], 0.5, "lane 2 fires at activation 2");
    }
}
