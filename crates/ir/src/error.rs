//! Error types for IR construction, parsing and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing or validating kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An expression id was out of bounds for the kernel arena.
    InvalidExpr(u32),
    /// An expression node is referenced from more than one position.
    ExprReused(u32),
    /// An expression references an operand with a greater or equal id,
    /// which would create a cycle in the arena.
    ExprCycle(u32),
    /// A name was declared twice in the same namespace.
    DuplicateName(String),
    /// A referenced name does not exist.
    UnknownName(String),
    /// DSL parse error with line/column (1-based) and message.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// A loop unrolling request was invalid (unknown loop, factor of zero).
    InvalidUnroll(String),
    /// An input's declared value range is unusable (non-finite bound or
    /// `lo > hi`). The bounds are carried pre-formatted so the error stays
    /// `Eq`-comparable.
    InvalidRange {
        /// Name of the offending input.
        input: String,
        /// The declared range, formatted as `[lo, hi]`.
        range: String,
    },
    /// A parameter table or state array was declared with zero elements.
    EmptyTable {
        /// `"param"` or `"array"`.
        kind: &'static str,
        /// Source-level name of the declaration.
        name: String,
    },
    /// A loop was opened with a trip count of zero.
    ZeroTripLoop,
    /// Loops were closed out of nesting order (or with none open).
    LoopNesting(String),
    /// An output index does not name a declared output.
    OutputOutOfRange {
        /// The requested output index.
        index: usize,
        /// Number of declared outputs.
        count: usize,
    },
    /// A declared output is never assigned a value anywhere in the body.
    OutputUnset(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::InvalidExpr(id) => write!(f, "expression id e{id} out of bounds"),
            IrError::ExprReused(id) => write!(f, "expression e{id} referenced more than once"),
            IrError::ExprCycle(id) => write!(f, "expression e{id} forms a cycle in the arena"),
            IrError::DuplicateName(n) => write!(f, "duplicate declaration of `{n}`"),
            IrError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            IrError::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            IrError::InvalidUnroll(msg) => write!(f, "invalid unroll request: {msg}"),
            IrError::InvalidRange { input, range } => {
                write!(f, "unusable value range {range} on input `{input}`")
            }
            IrError::EmptyTable { kind, name } => {
                write!(f, "{kind} `{name}` must have at least one element")
            }
            IrError::ZeroTripLoop => write!(f, "loop trip count must be positive"),
            IrError::LoopNesting(msg) => write!(f, "loop nesting violation: {msg}"),
            IrError::OutputOutOfRange { index, count } => {
                write!(f, "output index {index} out of range (kernel has {count})")
            }
            IrError::OutputUnset(name) => {
                write!(f, "output `{name}` is never assigned")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            IrError::InvalidExpr(3).to_string(),
            "expression id e3 out of bounds"
        );
        assert_eq!(
            IrError::Parse {
                line: 2,
                col: 5,
                msg: "expected `;`".into()
            }
            .to_string(),
            "parse error at 2:5: expected `;`"
        );
        assert!(IrError::DuplicateName("x".into())
            .to_string()
            .contains("`x`"));
    }
}
