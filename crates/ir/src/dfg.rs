//! Per-basic-block data-flow graphs with dependence and reachability
//! queries.
//!
//! The DFG is the structure consumed by SLP extraction: SIMD group
//! candidates are pairs of **isomorphic** and **independent** nodes, and
//! both properties are answered here. Nodes are created in statement order
//! with operands preceding users, so node indices form a valid topological
//! order.

use crate::blocks::Block;
use crate::kernel::{ExprNode, Kernel, Stmt};
use crate::types::{ArrayId, BinOp, ExprId, IndexExpr, InputId, ParamId, UnOp, VarId};
use std::collections::HashMap;
use std::fmt;

/// Identifies a node within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The operation performed by a DFG node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Floating-point literal.
    Const(f64),
    /// Reads the current value of a variable defined earlier in the block;
    /// its single operand is the defining node.
    VarUse(VarId),
    /// A variable value flowing into the block from outside (no in-block
    /// definition precedes the use).
    LiveIn(VarId),
    /// Per-activation input read.
    ReadInput(InputId),
    /// Parameter-table load.
    LoadParam(ParamId, IndexExpr),
    /// State-array load.
    LoadArray(ArrayId, IndexExpr),
    /// Unary arithmetic.
    Un(UnOp),
    /// Binary arithmetic.
    Bin(BinOp),
    /// State-array store; the single operand is the stored value.
    StoreArray(ArrayId, IndexExpr),
    /// Delay-line push; the single operand is the pushed value.
    ShiftIn(ArrayId),
    /// Output emission; the single operand is the emitted value.
    Output(usize),
}

impl NodeKind {
    /// Returns `true` for nodes SLP may place into SIMD groups.
    ///
    /// Arithmetic, loads and stores are groupable; wiring nodes (`VarUse`,
    /// `LiveIn`), constants, input reads, delay-line pushes and outputs are
    /// not.
    pub fn is_groupable(&self) -> bool {
        matches!(
            self,
            NodeKind::Bin(_)
                | NodeKind::Un(_)
                | NodeKind::LoadParam(..)
                | NodeKind::LoadArray(..)
                | NodeKind::StoreArray(..)
        )
    }

    /// Returns `true` if two kinds are isomorphic in the SLP sense: the
    /// same operation type, implementable by one SIMD instruction.
    ///
    /// Loads (and stores) are isomorphic only within the same array — a
    /// SIMD memory access targets one base address.
    pub fn isomorphic(&self, other: &NodeKind) -> bool {
        match (self, other) {
            (NodeKind::Bin(a), NodeKind::Bin(b)) => a == b,
            (NodeKind::Un(a), NodeKind::Un(b)) => a == b,
            (NodeKind::LoadParam(p, _), NodeKind::LoadParam(q, _)) => p == q,
            (NodeKind::LoadArray(a, _), NodeKind::LoadArray(b, _)) => a == b,
            (NodeKind::StoreArray(a, _), NodeKind::StoreArray(b, _)) => a == b,
            _ => false,
        }
    }

    /// The memory location class accessed by this node, if any.
    fn memory(&self) -> Option<(MemSpace, Option<&IndexExpr>, MemAccess)> {
        match self {
            NodeKind::LoadArray(a, ix) => Some((MemSpace::Array(*a), Some(ix), MemAccess::Read)),
            NodeKind::StoreArray(a, ix) => Some((MemSpace::Array(*a), Some(ix), MemAccess::Write)),
            NodeKind::ShiftIn(a) => Some((MemSpace::Array(*a), None, MemAccess::Write)),
            NodeKind::LoadParam(p, ix) => Some((MemSpace::Param(*p), Some(ix), MemAccess::Read)),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemSpace {
    Array(ArrayId),
    Param(ParamId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemAccess {
    Read,
    Write,
}

/// A node of the data-flow graph.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// What the node computes.
    pub kind: NodeKind,
    /// The originating expression, when the node stems from the arena
    /// (statement-level nodes such as stores carry `None`).
    pub expr: Option<ExprId>,
    /// Value operands (data-flow edges).
    pub operands: Vec<NodeId>,
    /// Additional ordering predecessors (memory hazards).
    pub deps: Vec<NodeId>,
    /// Nodes consuming this node's value.
    pub users: Vec<NodeId>,
}

/// A per-block data-flow graph.
#[derive(Debug, Clone)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    expr_to_node: HashMap<ExprId, NodeId>,
    /// reach[a] = bitset of nodes reachable from `a` along forward edges.
    reach: Vec<Vec<u64>>,
}

impl Dfg {
    /// Builds the DFG of a basic block.
    pub fn from_block(kernel: &Kernel, block: &Block) -> Self {
        Builder::new(kernel).build(&block.stmts)
    }

    /// Builds a DFG directly from straight-line statements (no `For`).
    ///
    /// # Panics
    ///
    /// Panics if `stmts` contains a [`Stmt::For`].
    pub fn from_stmts(kernel: &Kernel, stmts: &[Stmt]) -> Self {
        Builder::new(kernel).build(stmts)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &DfgNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The node created for an expression, if the expression belongs to
    /// this block.
    pub fn node_of_expr(&self, e: ExprId) -> Option<NodeId> {
        self.expr_to_node.get(&e).copied()
    }

    /// Returns `true` if `to` is reachable from `from` along operand or
    /// dependence edges (i.e. `to` transitively depends on `from`).
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let w = &self.reach[from.index()];
        (w[to.index() / 64] >> (to.index() % 64)) & 1 == 1
    }

    /// Returns `true` if neither node depends on the other — the
    /// independence requirement for SIMD grouping.
    pub fn independent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }

    /// Groupable nodes of the block, in topological order.
    pub fn groupable_nodes(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.kind.is_groupable())
            .map(|(id, _)| id)
            .collect()
    }

    /// All direct predecessors (operands plus ordering deps).
    pub fn preds(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.node(id);
        n.operands.iter().chain(n.deps.iter()).copied()
    }

    fn compute_reach(&mut self) {
        let n = self.nodes.len();
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        // Process in reverse topological order: reach(a) = union of
        // reach(succ) plus succ themselves. Successors always have larger
        // indices, so a reverse index scan works.
        for a in (0..n).rev() {
            let succs: Vec<usize> = {
                let node = &self.nodes[a];
                node.users
                    .iter()
                    .copied()
                    .chain(self.dep_successors(NodeId(a as u32)))
                    .map(|id| id.index())
                    .collect()
            };
            for s in succs {
                debug_assert!(s > a, "edges must point forward");
                // set bit s, union reach[s]
                let (left, right) = reach.split_at_mut(s);
                let ra = &mut left[a];
                let rs = &right[0];
                for (x, y) in ra.iter_mut().zip(rs.iter()) {
                    *x |= *y;
                }
                ra[s / 64] |= 1 << (s % 64);
            }
        }
        self.reach = reach;
    }

    /// Nodes that list `id` among their ordering deps.
    fn dep_successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter_map(move |(i, n)| {
            if n.deps.contains(&id) {
                Some(NodeId(i as u32))
            } else {
                None
            }
        })
    }
}

struct Builder<'k> {
    kernel: &'k Kernel,
    nodes: Vec<DfgNode>,
    expr_to_node: HashMap<ExprId, NodeId>,
    /// Current in-block definition of each variable.
    var_defs: HashMap<VarId, NodeId>,
    /// Live-in nodes already materialised per variable.
    live_ins: HashMap<VarId, NodeId>,
    /// All memory-touching nodes so far, for hazard edges.
    mem_nodes: Vec<NodeId>,
}

impl<'k> Builder<'k> {
    fn new(kernel: &'k Kernel) -> Self {
        Builder {
            kernel,
            nodes: Vec::new(),
            expr_to_node: HashMap::new(),
            var_defs: HashMap::new(),
            live_ins: HashMap::new(),
            mem_nodes: Vec::new(),
        }
    }

    fn push(&mut self, kind: NodeKind, expr: Option<ExprId>, operands: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut deps = Vec::new();
        if let Some((space, ix, access)) = kind.memory() {
            deps = self.hazards(space, ix, access);
            self.mem_nodes.push(id);
        }
        for &op in &operands {
            self.nodes[op.index()].users.push(id);
        }
        self.nodes.push(DfgNode {
            kind,
            expr,
            operands,
            deps,
            users: Vec::new(),
        });
        if let Some(e) = expr {
            self.expr_to_node.insert(e, id);
        }
        id
    }

    /// Memory-hazard predecessors for a new access.
    fn hazards(&self, space: MemSpace, ix: Option<&IndexExpr>, access: MemAccess) -> Vec<NodeId> {
        let mut deps = Vec::new();
        for &m in &self.mem_nodes {
            let (pspace, pix, paccess) = self.nodes[m.index()]
                .kind
                .memory()
                .expect("mem_nodes only contains memory nodes");
            if pspace != space {
                continue;
            }
            if paccess == MemAccess::Read && access == MemAccess::Read {
                continue; // read-read never conflicts
            }
            if may_alias(pix, ix) {
                deps.push(m);
            }
        }
        deps
    }

    fn build(mut self, stmts: &[Stmt]) -> Dfg {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    let val = self.expr(*e);
                    self.var_defs.insert(*v, val);
                }
                Stmt::Store(a, ix, e) => {
                    let val = self.expr(*e);
                    self.push(NodeKind::StoreArray(*a, ix.clone()), None, vec![val]);
                }
                Stmt::ShiftIn(a, e) => {
                    let val = self.expr(*e);
                    self.push(NodeKind::ShiftIn(*a), None, vec![val]);
                }
                Stmt::Output(idx, e) => {
                    let val = self.expr(*e);
                    self.push(NodeKind::Output(*idx), None, vec![val]);
                }
                Stmt::For { .. } => panic!("basic blocks must not contain loops"),
            }
        }
        let mut dfg = Dfg {
            nodes: self.nodes,
            expr_to_node: self.expr_to_node,
            reach: Vec::new(),
        };
        dfg.compute_reach();
        dfg
    }

    fn expr(&mut self, e: ExprId) -> NodeId {
        match self.kernel.expr(e).clone() {
            ExprNode::Const(v) => self.push(NodeKind::Const(v), Some(e), vec![]),
            ExprNode::ReadVar(v) => {
                if let Some(&def) = self.var_defs.get(&v) {
                    self.push(NodeKind::VarUse(v), Some(e), vec![def])
                } else {
                    let li = match self.live_ins.get(&v) {
                        Some(&li) => li,
                        None => {
                            let li = self.push(NodeKind::LiveIn(v), None, vec![]);
                            self.live_ins.insert(v, li);
                            li
                        }
                    };
                    self.push(NodeKind::VarUse(v), Some(e), vec![li])
                }
            }
            ExprNode::ReadInput(i) => self.push(NodeKind::ReadInput(i), Some(e), vec![]),
            ExprNode::LoadParam(p, ix) => self.push(NodeKind::LoadParam(p, ix), Some(e), vec![]),
            ExprNode::LoadArray(a, ix) => self.push(NodeKind::LoadArray(a, ix), Some(e), vec![]),
            ExprNode::Unary(op, a) => {
                let an = self.expr(a);
                self.push(NodeKind::Un(op), Some(e), vec![an])
            }
            ExprNode::Bin(op, a, b) => {
                let an = self.expr(a);
                let bn = self.expr(b);
                self.push(NodeKind::Bin(op), Some(e), vec![an, bn])
            }
        }
    }
}

/// Conservative alias test for two accesses to the same array.
///
/// `None` index means "whole array" (delay-line shift).
fn may_alias(a: Option<&IndexExpr>, b: Option<&IndexExpr>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => match a.constant_distance(b) {
            Some(d) => d == 0,
            None => true, // distinct affine shapes: assume aliasing
        },
        _ => true, // whole-array access aliases everything
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::collect_blocks;
    use crate::builder::KernelBuilder;

    /// acc = 0; t0 = c0*dl[0]; t1 = c1*dl[1]; acc = t0 + t1; y = acc
    fn two_tap() -> (Kernel, Dfg) {
        let mut b = KernelBuilder::new("t");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let dl = b.array("dl", 2);
        let c = b.param("c", vec![0.5, 0.25]);
        let xv = b.read_input(x);
        b.shift_in(dl, xv);
        let c0 = b.load_param(c, 0);
        let l0 = b.load(dl, 0);
        let m0 = b.mul(c0, l0);
        let c1 = b.load_param(c, 1);
        let l1 = b.load(dl, 1);
        let m1 = b.mul(c1, l1);
        let s = b.add(m0, m1);
        b.set_output(y, s);
        let k = b.finish();
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 1);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        (k, dfg)
    }

    fn find_kind(dfg: &Dfg, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        dfg.iter()
            .filter(|(_, n)| pred(&n.kind))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn builds_and_wires() {
        let (_, dfg) = two_tap();
        let muls = find_kind(&dfg, |k| matches!(k, NodeKind::Bin(BinOp::Mul)));
        assert_eq!(muls.len(), 2);
        let adds = find_kind(&dfg, |k| matches!(k, NodeKind::Bin(BinOp::Add)));
        assert_eq!(adds.len(), 1);
        // The two multiplies are independent, the add depends on both.
        assert!(dfg.independent(muls[0], muls[1]));
        assert!(dfg.reaches(muls[0], adds[0]));
        assert!(dfg.reaches(muls[1], adds[0]));
        assert!(!dfg.reaches(adds[0], muls[0]));
    }

    #[test]
    fn loads_after_shiftin_depend_on_it() {
        let (_, dfg) = two_tap();
        let shift = find_kind(&dfg, |k| matches!(k, NodeKind::ShiftIn(_)))[0];
        let loads = find_kind(&dfg, |k| matches!(k, NodeKind::LoadArray(..)));
        for l in loads {
            assert!(
                dfg.reaches(shift, l),
                "load must be ordered after the delay-line push"
            );
        }
    }

    #[test]
    fn param_loads_have_no_hazards() {
        let (_, dfg) = two_tap();
        let ploads = find_kind(&dfg, |k| matches!(k, NodeKind::LoadParam(..)));
        assert_eq!(ploads.len(), 2);
        assert!(dfg.independent(ploads[0], ploads[1]));
        for p in ploads {
            assert!(dfg.node(p).deps.is_empty());
        }
    }

    #[test]
    fn var_chain_creates_dependence() {
        // acc = a + b; acc = acc + c  => second add depends on first.
        let mut b = KernelBuilder::new("chain");
        let y = b.output("y");
        let acc = b.var("acc");
        let c1 = b.constf(1.0);
        let c2 = b.constf(2.0);
        let s1 = b.add(c1, c2);
        b.assign(acc, s1);
        let r = b.read_var(acc);
        let c3 = b.constf(3.0);
        let s2 = b.add(r, c3);
        b.assign(acc, s2);
        let r2 = b.read_var(acc);
        b.set_output(y, r2);
        let k = b.finish();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        let adds = find_kind(&dfg, |kk| matches!(kk, NodeKind::Bin(BinOp::Add)));
        assert_eq!(adds.len(), 2);
        assert!(dfg.reaches(adds[0], adds[1]));
        assert!(!dfg.independent(adds[0], adds[1]));
    }

    #[test]
    fn live_in_for_undefined_var() {
        let mut b = KernelBuilder::new("li");
        let y = b.output("y");
        let acc = b.var("acc");
        let r = b.read_var(acc); // no prior def in this block
        b.set_output(y, r);
        let k = b.finish();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        let lis = find_kind(&dfg, |kk| matches!(kk, NodeKind::LiveIn(_)));
        assert_eq!(lis.len(), 1);
    }

    #[test]
    fn isomorphism_rules() {
        let a0 = ArrayId(0);
        let a1 = ArrayId(1);
        let ix = IndexExpr::constant(0);
        assert!(NodeKind::Bin(BinOp::Mul).isomorphic(&NodeKind::Bin(BinOp::Mul)));
        assert!(!NodeKind::Bin(BinOp::Mul).isomorphic(&NodeKind::Bin(BinOp::Add)));
        assert!(
            NodeKind::LoadArray(a0, ix.clone()).isomorphic(&NodeKind::LoadArray(a0, ix.clone()))
        );
        assert!(
            !NodeKind::LoadArray(a0, ix.clone()).isomorphic(&NodeKind::LoadArray(a1, ix.clone()))
        );
        assert!(!NodeKind::LoadArray(a0, ix.clone()).isomorphic(&NodeKind::Bin(BinOp::Mul)));
    }

    #[test]
    fn store_then_load_same_index_is_ordered() {
        let mut b = KernelBuilder::new("sl");
        let y = b.output("y");
        let a = b.array("a", 4);
        let c = b.constf(1.0);
        b.store(a, 1, c);
        let l = b.load(a, 1);
        b.set_output(y, l);
        let k = b.finish();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        let st = find_kind(&dfg, |kk| matches!(kk, NodeKind::StoreArray(..)))[0];
        let ld = find_kind(&dfg, |kk| matches!(kk, NodeKind::LoadArray(..)))[0];
        assert!(dfg.reaches(st, ld));
    }

    #[test]
    fn store_then_load_distinct_index_is_independent() {
        let mut b = KernelBuilder::new("sl2");
        let y = b.output("y");
        let a = b.array("a", 4);
        let c = b.constf(1.0);
        b.store(a, 1, c);
        let l = b.load(a, 2);
        b.set_output(y, l);
        let k = b.finish();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        let st = find_kind(&dfg, |kk| matches!(kk, NodeKind::StoreArray(..)))[0];
        let ld = find_kind(&dfg, |kk| matches!(kk, NodeKind::LoadArray(..)))[0];
        assert!(dfg.independent(st, ld));
    }
}
