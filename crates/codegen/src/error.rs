//! Structured errors of the C back-ends.

use std::fmt;

/// Errors raised while emitting C from a machine program.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodegenError {
    /// A storage or value format has a word length no C integer type
    /// can hold (non-positive, or wider than 64 bits).
    InvalidWordLength {
        /// What carried the format (array/param/value name).
        context: String,
        /// The offending total word length.
        wl: i32,
    },
    /// The program contains a construct the C back-end cannot express
    /// (cost-model-only operations, intermediates beyond 63 bits).
    Unsupported(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::InvalidWordLength { context, wl } => {
                write!(f, "no C integer type holds {wl} bit(s) for {context}")
            }
            CodegenError::Unsupported(what) => write!(f, "cannot emit C: {what}"),
        }
    }
}

impl std::error::Error for CodegenError {}
