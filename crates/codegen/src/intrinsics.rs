//! Per-target implementations of the abstract SIMD macro API.
//!
//! Mirrors the paper's back-end, which "generates the API's
//! implementation for the specified target processor using its
//! corresponding SIMD intrinsics". Vendor intrinsic names are not public
//! documentation for these cores; the emitted headers use plausible
//! prefixes (`__xentium_*`, `__st240_*`, `_vex_*`) and fall back to plain
//! C for targets without a matching form, which is exactly how such
//! generated compatibility headers are structured.

use slpwlo_targets::TargetModel;
use std::fmt::Write as _;

/// Emits the `slpwlo_simd_<target>.h` macro-implementation header.
pub fn emit_intrinsics_header(target: &TargetModel) -> String {
    let mut s = String::new();
    let guard = format!(
        "SLPWLO_SIMD_{}_H",
        target.name.to_uppercase().replace('-', "_")
    );
    let _ = writeln!(s, "/* abstract SIMD macro API for {} */", target.name);
    let _ = writeln!(s, "#ifndef {guard}\n#define {guard}\n");
    let _ = writeln!(s, "#include <stdint.h>\n");
    let _ = writeln!(s, "typedef int32_t v2x16_t; /* two 16-bit lanes */");
    let _ = writeln!(s, "typedef int32_t v4x8_t;  /* four 8-bit lanes */\n");

    let prefix = match target.name.as_str() {
        "XENTIUM" => "__xentium",
        "ST240" => "__st240",
        _ => "_vex",
    };

    // Scalar helpers (plain C).
    for wl in [8, 16, 32] {
        let _ = writeln!(s, "#define ADD{wl}(a, b)      ((a) + (b))");
        let _ = writeln!(s, "#define MUL{wl}(a, b)      ((int64_t)(a) * (b))");
        let _ = writeln!(s, "#define SHR{wl}(a, s)      ((a) >> (s))");
        let _ = writeln!(s, "#define LOAD{wl}(p)        (*(p))");
        let _ = writeln!(s, "#define STORE{wl}(p, v)    (*(p) = (v))");
    }
    let _ = writeln!(s);

    // Vector forms supported by the target map to intrinsics.
    for cfg in &target.simd {
        let l = cfg.lanes;
        let _ = writeln!(s, "/* {l}x{}-bit sub-word forms */", cfg.elem_wl);
        let _ = writeln!(
            s,
            "#define VADD{l}(a, b)     {prefix}_add{l}x{}(a, b)",
            cfg.elem_wl
        );
        let _ = writeln!(
            s,
            "#define VMUL{l}(a, b)     {prefix}_mul{l}x{}(a, b)",
            cfg.elem_wl
        );
        let _ = writeln!(
            s,
            "#define VSHR{l}(a, s)     {prefix}_shr{l}x{}(a, s)",
            cfg.elem_wl
        );
        let _ = writeln!(
            s,
            "#define VLOAD{l}(p)       {prefix}_ld{l}x{}(p)",
            cfg.elem_wl
        );
        let _ = writeln!(
            s,
            "#define VSTORE{l}(p, v)   {prefix}_st{l}x{}(p, v)",
            cfg.elem_wl
        );
        let _ = writeln!(s, "#define PACK{l}(...)      {prefix}_pack{l}(__VA_ARGS__)");
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "#define PACK1(a)          (a) /* broadcast */");
    let _ = writeln!(s, "#define UNPACK(v, lane)   {prefix}_extract(v, lane)\n");

    // Float forms: hardware instructions or soft-float library calls.
    if target.hw_float {
        let _ = writeln!(
            s,
            "#define FADD(a, b)        ((a) + (b)) /* hardware FPU */"
        );
        let _ = writeln!(s, "#define FMUL(a, b)        ((a) * (b))");
    } else {
        let _ = writeln!(
            s,
            "#define FADD(a, b)        __softfloat_add(a, b) /* ~{} cycles */",
            target.fadd_cycles
        );
        let _ = writeln!(
            s,
            "#define FMUL(a, b)        __softfloat_mul(a, b) /* ~{} cycles */",
            target.fmul_cycles
        );
    }
    let _ = writeln!(s, "#define FLOAD(p)          (*(p))");
    let _ = writeln!(s, "#define FSTORE(p, v)      (*(p) = (v))\n");
    let _ = writeln!(s, "#endif /* {guard} */");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_targets::{all_targets, st240, vex, xentium};

    #[test]
    fn xentium_header_has_2x16_only() {
        let h = emit_intrinsics_header(&xentium());
        assert!(h.contains("__xentium_mul2x16"));
        assert!(!h.contains("VMUL4"), "XENTIUM has no 4-lane SIMD:\n{h}");
        assert!(h.contains("__softfloat_add"), "no FPU => soft float");
    }

    #[test]
    fn vex_header_has_both_widths() {
        let h = emit_intrinsics_header(&vex(4));
        assert!(h.contains("VMUL2") && h.contains("VMUL4"));
        assert!(h.contains("_vex_mul4x8"));
    }

    #[test]
    fn st240_uses_hardware_float() {
        let h = emit_intrinsics_header(&st240());
        assert!(h.contains("hardware FPU"));
        assert!(!h.contains("__softfloat"));
    }

    #[test]
    fn include_guards_are_unique() {
        let mut guards = std::collections::HashSet::new();
        for t in all_targets() {
            let h = emit_intrinsics_header(&t);
            let guard = h
                .lines()
                .find(|l| l.starts_with("#ifndef"))
                .expect("guard present")
                .to_string();
            assert!(guards.insert(guard), "duplicate guard for {}", t.name);
        }
    }
}
