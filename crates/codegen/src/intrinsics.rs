//! Per-target implementations of the abstract SIMD macro API.
//!
//! Mirrors the paper's back-end, which "generates the API's
//! implementation for the specified target processor using its
//! corresponding SIMD intrinsics". The emitted header carries two
//! implementations of the macro vocabulary:
//!
//! * a **portable C99 fallback** (the default): superwords are structs
//!   of 64-bit lanes, every macro expands to exact, well-defined
//!   integer arithmetic — this is what makes generated SIMD C
//!   executable (and differentially testable) on any host with a C
//!   compiler;
//! * a **native mapping** behind `SLPWLO_NATIVE_SIMD`, using plausible
//!   vendor intrinsic prefixes (`__xentium_*`, `__st240_*`, `_vex_*`) —
//!   vendor intrinsic names are not public documentation for these
//!   cores, and this section documents how such generated
//!   compatibility headers are structured. Per-lane scaling and
//!   saturation macros (`VSH*`, `VSAT*`) stay portable even there.

use crate::emit::{
    portable_core_macros, portable_scaling_macros, vector_runtime, RUNTIME_HELPERS, UNPACK_MACRO,
};
use slpwlo_targets::TargetModel;
use std::fmt::Write as _;

/// Emits the `slpwlo_simd_<target>.h` macro-implementation header.
pub fn emit_intrinsics_header(target: &TargetModel) -> String {
    let mut s = String::new();
    let guard = format!(
        "SLPWLO_SIMD_{}_H",
        target.name.to_uppercase().replace('-', "_")
    );
    let _ = writeln!(s, "/* abstract SIMD macro API for {} */", target.name);
    let _ = writeln!(s, "#ifndef {guard}\n#define {guard}\n");
    let _ = writeln!(s, "#include <stdint.h>");
    let _ = writeln!(s, "#include <math.h>\n");
    s.push_str(RUNTIME_HELPERS);
    let _ = writeln!(s);

    let lanes: Vec<u32> = target.simd.iter().map(|c| c.lanes).collect();
    s.push_str(&vector_runtime(&lanes));
    let _ = writeln!(s);

    let prefix = match target.name.as_str() {
        "XENTIUM" => "__xentium",
        "ST240" => "__st240",
        _ => "_vex",
    };

    let _ = writeln!(s, "#if defined(SLPWLO_NATIVE_SIMD)");
    let _ = writeln!(
        s,
        "/* native mapping onto {} sub-word intrinsics; per-lane scaling",
        target.name
    );
    let _ = writeln!(
        s,
        " * and saturation (VSH*/VSAT*) remain portable C below. */"
    );
    for cfg in &target.simd {
        let l = cfg.lanes;
        let w = cfg.elem_wl;
        let _ = writeln!(s, "/* {l}x{w}-bit sub-word forms */");
        let _ = writeln!(s, "#define VADD{l}(a, b)     {prefix}_add{l}x{w}(a, b)");
        let _ = writeln!(s, "#define VSUB{l}(a, b)     {prefix}_sub{l}x{w}(a, b)");
        let _ = writeln!(s, "#define VMUL{l}(a, b)     {prefix}_mul{l}x{w}(a, b)");
        let _ = writeln!(s, "#define VNEG{l}(a)        {prefix}_neg{l}x{w}(a)");
        let _ = writeln!(s, "#define VLOAD{l}(p)       {prefix}_ld{l}x{w}(p)");
        let _ = writeln!(s, "#define VSTORE{l}(p, v)   {prefix}_st{l}x{w}(p, v)");
        let _ = writeln!(s, "#define PACK{l}(...)      {prefix}_pack{l}(__VA_ARGS__)");
        let _ = writeln!(s, "#define SPLAT{l}(a)       {prefix}_splat{l}(a)");
    }
    let _ = writeln!(s, "#define UNPACK(v, lane)   {prefix}_extract(v, lane)");
    let _ = writeln!(s, "#else /* portable C99 fallback (the default) */");
    for cfg in &target.simd {
        let _ = writeln!(s, "/* {}x{}-bit sub-word forms */", cfg.lanes, cfg.elem_wl);
        s.push_str(&portable_core_macros(cfg.lanes));
    }
    s.push_str(UNPACK_MACRO);
    let _ = writeln!(s, "#endif /* SLPWLO_NATIVE_SIMD */\n");

    let _ = writeln!(
        s,
        "/* per-lane scaling and saturation: always portable, the"
    );
    let _ = writeln!(
        s,
        " * amounts/bounds are compile-time immediates of the emitter */"
    );
    for cfg in &target.simd {
        s.push_str(&portable_scaling_macros(cfg.lanes));
    }
    let _ = writeln!(s);

    // Float forms: hardware instructions or soft-float library calls.
    if target.hw_float {
        let _ = writeln!(
            s,
            "#define FADD(a, b)        ((a) + (b)) /* hardware FPU */"
        );
        let _ = writeln!(s, "#define FMUL(a, b)        ((a) * (b))");
    } else {
        let _ = writeln!(
            s,
            "#define FADD(a, b)        __softfloat_add(a, b) /* ~{} cycles */",
            target.fadd_cycles
        );
        let _ = writeln!(
            s,
            "#define FMUL(a, b)        __softfloat_mul(a, b) /* ~{} cycles */",
            target.fmul_cycles
        );
    }
    let _ = writeln!(s, "#define FLOAD(p)          (*(p))");
    let _ = writeln!(s, "#define FSTORE(p, v)      (*(p) = (v))\n");
    let _ = writeln!(s, "#endif /* {guard} */");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_targets::{all_targets, st240, vex, xentium};

    #[test]
    fn xentium_header_has_2x16_only() {
        let h = emit_intrinsics_header(&xentium());
        assert!(h.contains("__xentium_mul2x16"));
        assert!(!h.contains("VMUL4"), "XENTIUM has no 4-lane SIMD:\n{h}");
        assert!(h.contains("__softfloat_add"), "no FPU => soft float");
    }

    #[test]
    fn vex_header_has_both_widths() {
        let h = emit_intrinsics_header(&vex(4));
        assert!(h.contains("VMUL2") && h.contains("VMUL4"));
        assert!(h.contains("_vex_mul4x8"));
    }

    #[test]
    fn st240_uses_hardware_float() {
        let h = emit_intrinsics_header(&st240());
        assert!(h.contains("hardware FPU"));
        assert!(!h.contains("__softfloat"));
    }

    #[test]
    fn include_guards_are_unique() {
        let mut guards = std::collections::HashSet::new();
        for t in all_targets() {
            let h = emit_intrinsics_header(&t);
            let guard = h
                .lines()
                .find(|l| l.starts_with("#ifndef"))
                .expect("guard present")
                .to_string();
            assert!(guards.insert(guard), "duplicate guard for {}", t.name);
        }
    }

    #[test]
    fn portable_fallback_is_the_default() {
        let h = emit_intrinsics_header(&xentium());
        let portable = h
            .split("#else /* portable C99 fallback (the default) */")
            .nth(1)
            .expect("portable section present");
        assert!(portable.contains("slpwlo_v2("), "{portable}");
        assert!(h.contains("slpwlo_shr"), "runtime helpers present");
        assert!(h.contains("#define VSH2"), "scaling macros present");
        assert!(h.contains("#define VSAT2"), "saturation macros present");
    }
}
