//! The shared C emission core.
//!
//! Both back-ends — scalar fixed-point C and SIMD C over the abstract
//! macro API — render the *same* lowered [`MachineProgram`]: storage
//! declarations from [`slpwlo_core::ProgramStorage`], one
//! `<kernel>_step` driver whose loop nests come from the lowered
//! blocks, and one statement (or short statement group) per machine
//! operation, driven entirely by [`MopKind`]. Scalar operations render
//! as plain C expressions over `int64_t` registers; vector operations
//! render as macro invocations (`VLOAD2`, `VMUL2`, `VSH2`, `VSAT2`,
//! ...) implemented by the per-target intrinsics header.
//!
//! Emission mirrors the interpreter's semantics statement by statement:
//!
//! * right shifts go through `slpwlo_shr` (floor semantics, spelled out
//!   with unsigned arithmetic — C99 leaves `>>` of negative values
//!   implementation-defined);
//! * left shifts go through `slpwlo_shl`, a multiplication by a power
//!   of two (shifting a negative value left is undefined behaviour);
//! * every requantization saturates at its absolute target format,
//!   except where the target's integer range provably covers the
//!   operand's (then the clamp is unreachable and elided);
//! * integer constants are emitted as `INT64_C(...)` so 64-bit
//!   immediates survive LLP64 platforms where `long` is 32 bits.

use crate::error::CodegenError;
use slpwlo_core::{
    block_result_fmts, broadcast_lane, ix_bounds, loop_forest, product_fmt, Loc, LoopNest,
    MachineBlock, MachineProgram, MopKind, Operand, ProgramStorage,
};
use slpwlo_fixedpoint::QFormat;
use slpwlo_ir::types::{IndexExpr, LoopId};
use slpwlo_ir::BinOp;
use std::fmt::Write as _;

/// C integer type holding `wl` bits (container widths 8/16/32/64).
pub(crate) fn ctype(wl: i32, context: &str) -> Result<&'static str, CodegenError> {
    match wl {
        i32::MIN..=0 | 65.. => Err(CodegenError::InvalidWordLength {
            context: context.to_string(),
            wl,
        }),
        1..=8 => Ok("int8_t"),
        9..=16 => Ok("int16_t"),
        17..=32 => Ok("int32_t"),
        33..=64 => Ok("int64_t"),
    }
}

/// The scalar runtime helpers every emitted translation unit relies on.
/// Self-contained C99; `static inline`, so unused helpers cost nothing.
pub(crate) const RUNTIME_HELPERS: &str = r#"/* --- slpwlo fixed-point runtime (C99, well-defined shifts) --- */
/* Arithmetic right shift with floor semantics. C99 leaves `>>` on
 * negative values implementation-defined; this spells out two's-
 * complement floor division using unsigned shifts only. */
static inline int64_t slpwlo_shr(int64_t v, int n)
{
    if (v >= 0) return (int64_t)((uint64_t)v >> n);
    return ~(int64_t)(~(uint64_t)v >> n);
}
/* Left shift as a multiplication by a power of two: `v << n` on a
 * negative v is undefined behaviour in C99, `v * 2^n` is not (the
 * emitter guarantees the product fits in 63 bits). */
static inline int64_t slpwlo_shl(int64_t v, int n)
{
    return v * (int64_t)((uint64_t)1 << n);
}
/* Signed-amount scaling: positive amounts shift right (discard
 * fractional bits), negative amounts shift left (gain grid). */
static inline int64_t slpwlo_shx(int64_t v, int n)
{
    return n >= 0 ? slpwlo_shr(v, n) : slpwlo_shl(v, -n);
}
/* Saturation at a format's raw bounds. */
static inline int64_t slpwlo_sat(int64_t v, int64_t lo, int64_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}
/* Euclidean index wrap: mirrors the interpreter's rem_euclid so an
 * affine index leaving [0, len) addresses the same element the golden
 * references do (and never indexes out of bounds). */
static inline int64_t slpwlo_idx(int64_t ix, int64_t len)
{
    int64_t m = ix % len;
    return m < 0 ? m + len : m;
}
/* Input conversion: quantize a sample onto the 2^-fwl grid with
 * truncation toward negative infinity, saturating at the format
 * bounds. Matches the bit-accurate reference simulation. */
static inline int64_t slpwlo_quant(double x, int fwl, int64_t lo, int64_t hi)
{
    double s = floor(ldexp(x, fwl));
    if (s < (double)lo) return lo;
    if (s > (double)hi) return hi;
    return (int64_t)s;
}
/* Exact floor((a * b) / 2^n) for 0 <= n <= 63, without 128-bit types:
 * the full 128-bit two's-complement product is assembled from 32-bit
 * limbs (the classic mulh decomposition), then arithmetically shifted.
 * Used when the operand formats are wider than 32 bits each, so the
 * exact product no longer fits a 64-bit register (a covering variable
 * format times a covering variable format, for instance). The emitter
 * guarantees the *shifted* result fits int64_t. */
static inline int64_t slpwlo_mul_shr(int64_t a, int64_t b, int n)
{
    uint64_t ua = (uint64_t)a, ub = (uint64_t)b;
    uint64_t a_lo = ua & 0xffffffffu, a_hi = ua >> 32;
    uint64_t b_lo = ub & 0xffffffffu, b_hi = ub >> 32;
    uint64_t p0 = a_lo * b_lo;
    uint64_t p1 = a_lo * b_hi;
    uint64_t p2 = a_hi * b_lo;
    uint64_t p3 = a_hi * b_hi;
    uint64_t mid = p1 + (p0 >> 32);                  /* cannot overflow */
    uint64_t mid2 = p2 + (mid & 0xffffffffu);        /* cannot overflow */
    uint64_t lo = (mid2 << 32) | (p0 & 0xffffffffu);
    uint64_t hi = p3 + (mid >> 32) + (mid2 >> 32);
    if (a < 0) hi -= ub;                             /* signed correction */
    if (b < 0) hi -= ua;
    if (n == 0) return (int64_t)lo;
    return (int64_t)((lo >> n) | (hi << (64 - n)));
}
"#;

/// Portable vector runtime: lane structs plus constructors. The macro
/// API on top of it is emitted per target by `emit_intrinsics_header`.
pub(crate) fn vector_runtime(lane_counts: &[u32]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "/* --- portable superword runtime: one 64-bit slot per lane --- */"
    );
    let _ = writeln!(s, "typedef struct {{ int64_t l[4]; }} slpwlo_vec_t;");
    if lane_counts.contains(&2) {
        let _ = writeln!(
            s,
            "static inline slpwlo_vec_t slpwlo_v2(int64_t a, int64_t b)\n{{\n    slpwlo_vec_t v = {{{{ a, b, 0, 0 }}}};\n    return v;\n}}"
        );
    }
    if lane_counts.contains(&4) {
        let _ = writeln!(
            s,
            "static inline slpwlo_vec_t slpwlo_v4(int64_t a, int64_t b, int64_t c, int64_t d)\n{{\n    slpwlo_vec_t v = {{{{ a, b, c, d }}}};\n    return v;\n}}"
        );
    }
    s
}

/// The portable implementations of the *core* abstract SIMD macros for
/// one lane count — loads/stores, exact lane arithmetic and superword
/// build/extract. These are the macros a native-intrinsic mapping can
/// replace.
pub(crate) fn portable_core_macros(lanes: u32) -> String {
    let n = lanes as usize;
    let l = |body: &dyn Fn(usize) -> String| -> String {
        (0..n).map(body).collect::<Vec<_>>().join(", ")
    };
    let ctor = if lanes == 2 { "slpwlo_v2" } else { "slpwlo_v4" };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "#define VLOAD{lanes}(p)  {ctor}({})",
        l(&|i| format!("(int64_t)(p)[{i}]"))
    );
    let _ = writeln!(
        s,
        "#define VSTORE{lanes}(p, v)  ({})",
        l(&|i| format!("(p)[{i}] = (v).l[{i}]"))
    );
    for (name, sym) in [("VADD", "+"), ("VSUB", "-"), ("VMUL", "*")] {
        let _ = writeln!(
            s,
            "#define {name}{lanes}(a, b)  {ctor}({})",
            l(&|i| format!("(a).l[{i}] {sym} (b).l[{i}]"))
        );
    }
    let _ = writeln!(
        s,
        "#define VNEG{lanes}(a)  {ctor}({})",
        l(&|i| format!("-(a).l[{i}]"))
    );
    let pack_args = (0..n)
        .map(|i| format!("a{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        s,
        "#define PACK{lanes}({pack_args})  {ctor}({})",
        l(&|i| format!("(int64_t)(a{i})"))
    );
    let _ = writeln!(
        s,
        "#define SPLAT{lanes}(a)  {ctor}({})",
        l(&|_| "(int64_t)(a)".to_string())
    );
    s
}

/// The portable per-lane *scaling* macros for one lane count —
/// grid shifts and saturation with compile-time immediates. Always
/// portable: the amounts/bounds come from the fixed-point
/// specification, native intrinsic sets have no equivalent form.
pub(crate) fn portable_scaling_macros(lanes: u32) -> String {
    let n = lanes as usize;
    let l = |body: &dyn Fn(usize) -> String| -> String {
        (0..n).map(body).collect::<Vec<_>>().join(", ")
    };
    let ctor = if lanes == 2 { "slpwlo_v2" } else { "slpwlo_v4" };
    let mut s = String::new();
    let shift_args = (0..n)
        .map(|i| format!("s{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        s,
        "#define VSH{lanes}(a, {shift_args})  {ctor}({})",
        l(&|i| format!("slpwlo_shx((a).l[{i}], s{i})"))
    );
    let sat_args = (0..n)
        .map(|i| format!("lo{i}, hi{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        s,
        "#define VSAT{lanes}(a, {sat_args})  {ctor}({})",
        l(&|i| format!("slpwlo_sat((a).l[{i}], lo{i}, hi{i})"))
    );
    s
}

/// `UNPACK` is lane-count agnostic.
pub(crate) const UNPACK_MACRO: &str = "#define UNPACK(v, lane)  ((v).l[lane])\n";

fn int64c(v: i64) -> String {
    format!("INT64_C({v})")
}

/// Renders an index expression against the loop variables `i<id>`.
fn render_ix(ix: &IndexExpr) -> String {
    let mut out = String::new();
    for &(var, c) in ix.terms() {
        if !out.is_empty() {
            out.push_str(" + ");
        }
        if c == 1 {
            let _ = write!(out, "i{}", var.0);
        } else {
            let _ = write!(out, "{c}*i{}", var.0);
        }
    }
    let off = ix.offset();
    if out.is_empty() {
        let _ = write!(out, "{off}");
    } else if off > 0 {
        let _ = write!(out, " + {off}");
    } else if off < 0 {
        let _ = write!(out, " - {}", -off);
    }
    out
}

/// Collects, per op index, whether some later consumer references it.
fn used_results(block: &MachineBlock) -> Vec<bool> {
    let mut used = vec![false; block.ops.len()];
    let mut mark = |o: &Operand| {
        if let Operand::Op(i) = o {
            used[*i] = true;
        }
    };
    for op in &block.ops {
        for o in kind_operands(&op.kind) {
            mark(o);
        }
    }
    for (_, def) in &block.var_defs {
        mark(def);
    }
    used
}

/// The value operands a kind consumes.
pub(crate) fn kind_operands(kind: &MopKind) -> Vec<&Operand> {
    match kind {
        MopKind::Bin { a, b, .. } | MopKind::VBin { a, b, .. } => vec![a, b],
        MopKind::Un { src, .. }
        | MopKind::VUn { src, .. }
        | MopKind::Requant { src, .. }
        | MopKind::VRequant { src, .. }
        | MopKind::Copy { src }
        | MopKind::Splat { src, .. }
        | MopKind::Extract { src, .. }
        | MopKind::Store { src, .. }
        | MopKind::VStore { src, .. }
        | MopKind::ShiftIn { src, .. }
        | MopKind::Output { src, .. } => vec![src],
        MopKind::Pack { lanes } => lanes.iter().collect(),
        MopKind::ReadInput { .. }
        | MopKind::Load { .. }
        | MopKind::VLoad { .. }
        | MopKind::Nop
        | MopKind::Opaque => Vec::new(),
    }
}

/// Variables the program actually touches (reads as live-ins or
/// commits definitions to); the rest are block-local wiring resolved
/// into registers and would be flagged by `-Wunused-variable`.
fn touched_vars(prog: &MachineProgram) -> Vec<bool> {
    let mut touched = vec![false; prog.storage.vars.len()];
    for b in &prog.blocks {
        for (v, def) in &b.var_defs {
            touched[v.index()] = true;
            if let Operand::Var(w) = def {
                touched[w.index()] = true;
            }
        }
        for op in &b.ops {
            for o in kind_operands(&op.kind) {
                if let Operand::Var(v) = o {
                    touched[v.index()] = true;
                }
            }
        }
    }
    touched
}

/// Emits the quantized coefficient tables, state arrays and variables.
pub(crate) fn emit_storage(s: &mut String, prog: &MachineProgram) -> Result<(), CodegenError> {
    let storage = &prog.storage;
    for p in &storage.params {
        let ty = ctype(p.fmt.wl(), &format!("parameter table `{}`", p.name))?;
        let _ = writeln!(
            s,
            "/* {} format <{},{}> (quantized at compile time) */",
            p.name, p.fmt.iwl, p.fmt.fwl
        );
        let _ = write!(s, "static const {ty} {}[{}] = {{ ", p.name, p.raws.len());
        for (i, &q) in p.raws.iter().enumerate() {
            if i > 0 {
                let _ = write!(s, ", ");
            }
            if ty == "int64_t" {
                let _ = write!(s, "{}", int64c(q));
            } else {
                let _ = write!(s, "{q}");
            }
        }
        let _ = writeln!(s, " }};");
    }
    for a in &storage.arrays {
        let ty = ctype(a.fmt.wl(), &format!("state array `{}`", a.name))?;
        let _ = writeln!(s, "/* {} format <{},{}> */", a.name, a.fmt.iwl, a.fmt.fwl);
        let _ = writeln!(s, "static {ty} {}[{}];", a.name, a.len);
    }
    let touched = touched_vars(prog);
    for (i, v) in storage.vars.iter().enumerate() {
        if !touched[i] {
            continue;
        }
        if v.fmt.wl() <= 0 || v.fmt.wl() > 64 {
            return Err(CodegenError::InvalidWordLength {
                context: format!("variable `{}`", v.name),
                wl: v.fmt.wl(),
            });
        }
        let _ = writeln!(
            s,
            "/* {} canonical format <{},{}> */",
            v.name, v.fmt.iwl, v.fmt.fwl
        );
        let _ = writeln!(s, "static int64_t {} = 0;", v.name);
    }
    Ok(())
}

/// Emits the `<kernel>_step` driver: signature, per-block loop nests,
/// one statement group per machine operation, and the end-of-iteration
/// variable commits.
pub(crate) fn emit_step(s: &mut String, prog: &MachineProgram) -> Result<(), CodegenError> {
    let storage = &prog.storage;
    let _ = write!(s, "void {}_step(", prog.name);
    let mut first = true;
    for inp in &storage.inputs {
        if !first {
            let _ = write!(s, ", ");
        }
        first = false;
        let _ = write!(s, "double {inp}_in");
    }
    for out in &storage.outputs {
        if !first {
            let _ = write!(s, ", ");
        }
        first = false;
        let _ = write!(s, "double *{out}_out");
    }
    if first {
        let _ = write!(s, "void");
    }
    let _ = writeln!(s, ")\n{{");
    // Silence -Wunused-parameter for inputs no block reads.
    let mut read_inputs = vec![false; storage.inputs.len()];
    for b in &prog.blocks {
        for op in &b.ops {
            if let MopKind::ReadInput { input, .. } = &op.kind {
                read_inputs[input.index()] = true;
            }
        }
    }
    for (i, inp) in storage.inputs.iter().enumerate() {
        if !read_inputs[i] {
            let _ = writeln!(s, "    (void){inp}_in;");
        }
    }
    // Blocks may share enclosing loops (an unrolled inner loop and its
    // remainder under one outer loop): walk the reconstructed loop
    // forest so each shared loop is emitted exactly once and sibling
    // blocks interleave per iteration, as in the source program.
    emit_forest(s, prog, &loop_forest(&prog.blocks), 1)?;
    let _ = writeln!(s, "}}");
    Ok(())
}

fn emit_forest(
    s: &mut String,
    prog: &MachineProgram,
    nests: &[LoopNest],
    indent: usize,
) -> Result<(), CodegenError> {
    let pad = "    ".repeat(indent);
    for nest in nests {
        match nest {
            LoopNest::Block(bi) => {
                let block = &prog.blocks[*bi];
                let _ = writeln!(
                    s,
                    "{pad}/* bb{bi}: {} ops, executes {}x per activation{} */",
                    block.ops.len(),
                    block.trip,
                    if block.in_loop { ", loop body" } else { "" }
                );
                let braced = block.loops.is_empty();
                if braced {
                    let _ = writeln!(s, "{pad}{{");
                }
                let body_indent = if braced { indent + 1 } else { indent };
                emit_block_body(s, prog, block, *bi, body_indent)?;
                if braced {
                    let _ = writeln!(s, "{pad}}}");
                }
            }
            LoopNest::Loop { var, count, body } => {
                let _ = writeln!(
                    s,
                    "{pad}for (int i{0} = 0; i{0} < {count}; i{0}++) {{",
                    var.0
                );
                emit_forest(s, prog, body, indent + 1)?;
                let _ = writeln!(s, "{pad}}}");
            }
        }
    }
    Ok(())
}

/// Renders one block's operations and variable commits.
fn emit_block_body(
    s: &mut String,
    prog: &MachineProgram,
    block: &MachineBlock,
    bi: usize,
    indent: usize,
) -> Result<(), CodegenError> {
    let em = BlockEmitter {
        storage: &prog.storage,
        fmts: block_result_fmts(block, &prog.storage),
        loops: &block.loops,
        bi,
    };
    let used = used_results(block);
    let pad = "    ".repeat(indent);
    for (idx, op) in block.ops.iter().enumerate() {
        for line in em.render_op(idx, &op.kind)? {
            let _ = writeln!(s, "{pad}{line}");
        }
        if !em.fmts[idx].is_empty() && !used[idx] {
            let _ = writeln!(s, "{pad}(void){};", em.reg(idx));
        }
    }
    // Commit variable definitions: materialise every new value first so
    // definitions reading other live-ins still see the entry snapshot.
    if !block.var_defs.is_empty() {
        let _ = writeln!(
            s,
            "{pad}/* variable commits (live-in snapshot semantics) */"
        );
        for (k, (v, def)) in block.var_defs.iter().enumerate() {
            let canon = prog.storage.vars[v.index()].fmt;
            let (expr, from) = em.scalar_operand(def);
            // Canonical storage covers every definition: pure left
            // alignment, saturation unreachable.
            let aligned = em.grid_expr(expr, from, canon.fwl)?;
            let _ = writeln!(s, "{pad}int64_t {} = {aligned};", em.def_tmp(k));
        }
        for (k, (v, _)) in block.var_defs.iter().enumerate() {
            let _ = writeln!(
                s,
                "{pad}{} = {};",
                prog.storage.vars[v.index()].name,
                em.def_tmp(k)
            );
        }
    }
    Ok(())
}

struct BlockEmitter<'a> {
    storage: &'a ProgramStorage,
    fmts: Vec<Vec<QFormat>>,
    loops: &'a [(LoopId, u32)],
    bi: usize,
}

impl BlockEmitter<'_> {
    fn reg(&self, idx: usize) -> String {
        format!("v{}_{idx}", self.bi)
    }

    fn def_tmp(&self, k: usize) -> String {
        format!("v{}_def{k}", self.bi)
    }

    fn scalar_operand(&self, o: &Operand) -> (String, QFormat) {
        match o {
            Operand::Op(i) => (self.reg(*i), self.fmts[*i][0]),
            Operand::Imm { raw, fmt } => (int64c(*raw), *fmt),
            Operand::Var(v) => {
                let decl = &self.storage.vars[v.index()];
                (decl.name.clone(), decl.fmt)
            }
        }
    }

    fn vector_operand(&self, o: &Operand) -> Result<(String, Vec<QFormat>), CodegenError> {
        match o {
            Operand::Op(i) => Ok((self.reg(*i), self.fmts[*i].clone())),
            other => Err(CodegenError::Unsupported(format!(
                "vector operand must be a register, got {other:?}"
            ))),
        }
    }

    fn lane_fmt(fmts: &[QFormat], lane: usize) -> QFormat {
        broadcast_lane(fmts, lane)
    }

    /// Pure grid change (no saturation): floor on downshifts, exact on
    /// upshifts. Errors if the widened raw would overflow 63 bits.
    fn grid_expr(&self, expr: String, from: QFormat, fwl: i32) -> Result<String, CodegenError> {
        let shift = from.fwl - fwl;
        if shift > 0 {
            Ok(format!("slpwlo_shr({expr}, {shift})"))
        } else if shift < 0 {
            let n = -shift;
            if from.wl() + n > 63 {
                return Err(CodegenError::Unsupported(format!(
                    "left alignment by {n} bit(s) overflows a 64-bit register \
                     (operand format <{},{}>)",
                    from.iwl, from.fwl
                )));
            }
            Ok(format!("slpwlo_shl({expr}, {n})"))
        } else {
            Ok(expr)
        }
    }

    /// Full requantization: grid change plus saturation at `to`,
    /// eliding the clamp when `to`'s integer range covers the operand's
    /// (then it is unreachable; `force_sat` keeps it, for negations
    /// where the exact minimum overflows the symmetric bound).
    fn requant_expr(
        &self,
        expr: String,
        from: QFormat,
        to: QFormat,
        force_sat: bool,
    ) -> Result<String, CodegenError> {
        let e = self.grid_expr(expr, from, to.fwl)?;
        if !force_sat && to.iwl >= from.iwl {
            return Ok(e);
        }
        Ok(format!(
            "slpwlo_sat({e}, {}, {})",
            int64c(to.min_raw()),
            int64c(to.max_raw())
        ))
    }

    /// The exact product of two scalar operands on `product_fmt`'s
    /// grid. A plain 64-bit multiply when the operand widths allow it;
    /// otherwise the 128-bit helper floor-shifts the exact product down
    /// to the capped grid (the format every consumer tracks for this
    /// operation).
    fn mul_grid_expr(
        &self,
        ea: &str,
        eb: &str,
        fa: QFormat,
        fb: QFormat,
    ) -> Result<String, CodegenError> {
        // Consumers track this value on `product_fmt`'s grid, which is
        // coarser than the natural product grid whenever the capped
        // container bites — the emitted value must land on that same
        // grid in every case.
        let shift = fa.fwl + fb.fwl - product_fmt(fa, fb).fwl;
        if fa.wl() + fb.wl() <= 64 {
            let prod = format!("({ea}) * ({eb})");
            return Ok(if shift == 0 {
                prod
            } else {
                format!("slpwlo_shr({prod}, {shift})")
            });
        }
        if !(0..=63).contains(&shift) {
            return Err(CodegenError::Unsupported(format!(
                "product of <{},{}> and <{},{}> exceeds 64 bits and cannot be \
                 floor-shifted into range",
                fa.iwl, fa.fwl, fb.iwl, fb.fwl
            )));
        }
        Ok(format!("slpwlo_mul_shr({ea}, {eb}, {shift})"))
    }

    /// The exact product of two scalar operands, requantized to `to`.
    ///
    /// Narrow products (combined operand width <= 64 bits) multiply
    /// directly in a 64-bit register; wider ones — covering variable
    /// storage formats can exceed the target word length, so two of
    /// them can multiply past 64 bits — go through `slpwlo_mul_shr`,
    /// which assembles the exact 128-bit product from 32-bit limbs and
    /// floor-shifts it onto the result grid (bit-identical to the
    /// reference's `i128` arithmetic). The saturation decision uses the
    /// *true* product integer width `fa.iwl + fb.iwl`: `product_fmt`
    /// caps its IWL for raw-bound bookkeeping, and deciding on the
    /// capped value would skip a saturation the reference performs.
    fn mul_requant_expr(
        &self,
        ea: &str,
        eb: &str,
        fa: QFormat,
        fb: QFormat,
        to: QFormat,
    ) -> Result<String, CodegenError> {
        let true_iwl = fa.iwl + fb.iwl;
        let grid_fwl = fa.fwl + fb.fwl;
        let shift = grid_fwl - to.fwl;
        let base = if fa.wl() + fb.wl() <= 64 {
            self.grid_expr(
                format!("({ea}) * ({eb})"),
                QFormat::new(true_iwl, grid_fwl),
                to.fwl,
            )?
        } else if (0..=63).contains(&shift) && true_iwl + to.fwl <= 63 {
            // The shifted exact product spans at most
            // `true_iwl + to.fwl` magnitude bits — the second conjunct
            // guarantees it fits the int64 register *before* the
            // saturation below, mirroring the interpreter's exact i128
            // clamp (slpwlo_mul_shr would otherwise wrap).
            format!("slpwlo_mul_shr({ea}, {eb}, {shift})")
        } else {
            return Err(CodegenError::Unsupported(format!(
                "product of <{},{}> and <{},{}> exceeds 64 bits and cannot be \
                 floor-shifted onto the 2^-{} grid",
                fa.iwl, fa.fwl, fb.iwl, fb.fwl, to.fwl
            )));
        };
        if to.iwl >= true_iwl {
            return Ok(base);
        }
        Ok(format!(
            "slpwlo_sat({base}, {}, {})",
            int64c(to.min_raw()),
            int64c(to.max_raw())
        ))
    }

    /// Static bounds of an affine index over this block's loop nest
    /// (the shared `slpwlo_core::ix_bounds`, so the wrap analysis here
    /// can never disagree with the lowering's gather/scatter decision).
    fn ix_bounds(&self, ix: &IndexExpr) -> (i64, i64) {
        ix_bounds(ix, self.loops)
    }

    /// Renders a location access; indices that can leave `[0, len)` are
    /// wrapped with `slpwlo_idx` to mirror the interpreters' Euclidean
    /// semantics (in-bounds accesses stay direct).
    fn loc_expr(&self, loc: &Loc) -> String {
        let (name, len, ix) = match loc {
            Loc::Array(a, ix) => {
                let d = &self.storage.arrays[a.index()];
                (d.name.as_str(), d.len as i64, ix)
            }
            Loc::Param(p, ix) => {
                let d = &self.storage.params[p.index()];
                (d.name.as_str(), d.raws.len() as i64, ix)
            }
        };
        let (lo, hi) = self.ix_bounds(ix);
        if lo >= 0 && hi < len {
            format!("{name}[{}]", render_ix(ix))
        } else {
            format!("{name}[slpwlo_idx({}, {len})]", render_ix(ix))
        }
    }

    /// A vector access must stay contiguous: per-lane wrapping would
    /// break the single-base-pointer form, so potentially out-of-range
    /// lanes are refused (the interpreter still executes them).
    fn vector_loc_expr(&self, locs: &[Loc]) -> Result<String, CodegenError> {
        for loc in locs {
            let (len, ix) = match loc {
                Loc::Array(a, ix) => (self.storage.arrays[a.index()].len as i64, ix),
                Loc::Param(p, ix) => (self.storage.params[p.index()].raws.len() as i64, ix),
            };
            let (lo, hi) = self.ix_bounds(ix);
            if lo < 0 || hi >= len {
                return Err(CodegenError::Unsupported(format!(
                    "vector access lane index {ix} may leave [0, {len})"
                )));
            }
        }
        Ok(self.loc_expr(&locs[0]))
    }

    fn render_op(&self, idx: usize, kind: &MopKind) -> Result<Vec<String>, CodegenError> {
        let reg = self.reg(idx);
        let lines = match kind {
            MopKind::Opaque => {
                return Err(CodegenError::Unsupported(
                    "cost-model-only (opaque) operation".into(),
                ))
            }
            MopKind::Nop => Vec::new(),
            MopKind::ReadInput { input, to } => {
                let name = &self.storage.inputs[input.index()];
                vec![format!(
                    "int64_t {reg} = slpwlo_quant({name}_in, {}, {}, {});",
                    to.fwl,
                    int64c(to.min_raw()),
                    int64c(to.max_raw())
                )]
            }
            MopKind::Load { loc } => {
                vec![format!("int64_t {reg} = {};", self.loc_expr(loc))]
            }
            MopKind::Store { loc, src, to } => {
                let (e, from) = self.scalar_operand(src);
                let q = self.requant_expr(e, from, *to, false)?;
                vec![format!(
                    "{} = ({}){q};",
                    self.loc_expr(loc),
                    self.store_cast(to, loc)?
                )]
            }
            MopKind::ShiftIn { array, src, to } => {
                let decl = &self.storage.arrays[array.index()];
                let (e, from) = self.scalar_operand(src);
                let q = self.requant_expr(e, from, *to, false)?;
                let name = &decl.name;
                let ty = ctype(to.wl(), &format!("state array `{name}`"))?;
                vec![
                    format!(
                        "for (int k = {}; k > 0; k--) {name}[k] = {name}[k-1]; /* delay line */",
                        decl.len - 1
                    ),
                    format!("{name}[0] = ({ty}){q};"),
                ]
            }
            MopKind::Output { index, src } => {
                let name = &self.storage.outputs[*index];
                let (e, from) = self.scalar_operand(src);
                vec![format!(
                    "*{name}_out = ldexp((double)({e}), {});",
                    -from.fwl
                )]
            }
            MopKind::Bin { op, a, b, to } => {
                let (ea, fa) = self.scalar_operand(a);
                let (eb, fb) = self.scalar_operand(b);
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let t = to.expect("additive ops carry a result format");
                        let aa = self.grid_expr(format!("({ea})"), fa, t.fwl)?;
                        let bb = self.grid_expr(format!("({eb})"), fb, t.fwl)?;
                        let sym = if matches!(op, BinOp::Sub) { "-" } else { "+" };
                        let sum = format!("{aa} {sym} {bb}");
                        let e = if t.iwl > fa.iwl.max(fb.iwl) {
                            sum
                        } else {
                            format!(
                                "slpwlo_sat({sum}, {}, {})",
                                int64c(t.min_raw()),
                                int64c(t.max_raw())
                            )
                        };
                        vec![format!("int64_t {reg} = {e};")]
                    }
                    BinOp::Mul => {
                        let e = match to {
                            // Unrequantized product, kept on the (possibly
                            // capped) `product_fmt` grid; the follow-up
                            // Requant floor-shifts the rest of the way.
                            None => self.mul_grid_expr(&ea, &eb, fa, fb)?,
                            Some(t) => self.mul_requant_expr(&ea, &eb, fa, fb, *t)?,
                        };
                        vec![format!("int64_t {reg} = {e};")]
                    }
                }
            }
            MopKind::Un { src, to } => {
                let (e, from) = self.scalar_operand(src);
                let q = self.requant_expr(format!("-({e})"), from, *to, true)?;
                vec![format!("int64_t {reg} = {q};")]
            }
            MopKind::Requant { src, to } => {
                let (e, from) = self.scalar_operand(src);
                let q = self.requant_expr(e, from, *to, false)?;
                vec![format!("int64_t {reg} = {q};")]
            }
            MopKind::Copy { src } => match src {
                Operand::Op(i) if self.fmts[*i].len() > 1 => {
                    vec![format!("slpwlo_vec_t {reg} = {};", self.reg(*i))]
                }
                _ => {
                    let (e, _) = self.scalar_operand(src);
                    vec![format!("int64_t {reg} = {e};")]
                }
            },
            MopKind::Extract {
                src,
                lane,
                negate,
                to,
            } => {
                let (e, fmts) = self.vector_operand(src)?;
                let from = Self::lane_fmt(&fmts, *lane as usize);
                let mut expr = format!("UNPACK({e}, {lane})");
                if *negate {
                    expr = format!("-({expr})");
                }
                let expr = match to {
                    Some(t) => self.requant_expr(expr, from, *t, *negate)?,
                    None => expr,
                };
                vec![format!("int64_t {reg} = {expr};")]
            }
            MopKind::Pack { lanes } => {
                let n = lanes.len();
                let args: Vec<String> = lanes.iter().map(|o| self.scalar_operand(o).0).collect();
                vec![format!(
                    "slpwlo_vec_t {reg} = PACK{n}({});",
                    args.join(", ")
                )]
            }
            MopKind::Splat { src, lanes } => {
                let (e, _) = self.scalar_operand(src);
                vec![format!("slpwlo_vec_t {reg} = SPLAT{lanes}({e});")]
            }
            MopKind::VLoad { locs } => {
                let n = locs.len();
                vec![format!(
                    "slpwlo_vec_t {reg} = VLOAD{n}(&{});",
                    self.vector_loc_expr(locs)?
                )]
            }
            MopKind::VStore { locs, src, to } => {
                let (e, fmts) = self.vector_operand(src)?;
                let n = locs.len();
                let mut lines = Vec::new();
                let val = self.vector_requant(
                    &format!("{reg}_st"),
                    e,
                    &fmts,
                    &vec![*to; n],
                    false,
                    &mut lines,
                )?;
                lines.push(format!(
                    "VSTORE{n}(&{}, {val});",
                    self.vector_loc_expr(locs)?
                ));
                lines
            }
            MopKind::VBin { op, a, b, to } => {
                let (ea, fas) = self.vector_operand(a)?;
                let (eb, fbs) = self.vector_operand(b)?;
                let n = to
                    .as_ref()
                    .map(|t| t.len())
                    .unwrap_or_else(|| fas.len().max(fbs.len()));
                let mut lines = Vec::new();
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let t = to.as_ref().expect("additive groups carry formats");
                        let aa = self.vector_grid(&format!("{reg}_a"), ea, &fas, t, &mut lines)?;
                        let bb = self.vector_grid(&format!("{reg}_b"), eb, &fbs, t, &mut lines)?;
                        let name = if matches!(op, BinOp::Sub) {
                            "VSUB"
                        } else {
                            "VADD"
                        };
                        let core = format!("{name}{n}({aa}, {bb})");
                        let sat_needed = (0..n).any(|l| {
                            t[l].iwl
                                < Self::lane_fmt(&fas, l).iwl.max(Self::lane_fmt(&fbs, l).iwl) + 1
                        });
                        let e = if sat_needed {
                            self.vsat_expr(core, t)
                        } else {
                            core
                        };
                        lines.push(format!("slpwlo_vec_t {reg} = {e};"));
                    }
                    BinOp::Mul => {
                        let wide = (0..n).any(|l| {
                            Self::lane_fmt(&fas, l).wl() + Self::lane_fmt(&fbs, l).wl() > 64
                        });
                        match (wide, to) {
                            (true, to) => {
                                // Wide operand lanes (covering variable
                                // storage formats) cannot multiply inside
                                // a 64-bit lane: scalarize through the
                                // exact 128-bit helper — requantized to
                                // the carried lane formats, or onto the
                                // capped `product_fmt` grid when the
                                // scaling follows separately — then
                                // repack.
                                let mut lanes = Vec::with_capacity(n);
                                for l in 0..n {
                                    let fa = Self::lane_fmt(&fas, l);
                                    let fb = Self::lane_fmt(&fbs, l);
                                    let la = format!("UNPACK({ea}, {l})");
                                    let lb = format!("UNPACK({eb}, {l})");
                                    let e = match to {
                                        Some(t) => self.mul_requant_expr(&la, &lb, fa, fb, t[l])?,
                                        None => self.mul_grid_expr(&la, &lb, fa, fb)?,
                                    };
                                    let lane = format!("{reg}_l{l}");
                                    lines.push(format!("int64_t {lane} = {e};"));
                                    lanes.push(lane);
                                }
                                lines.push(format!(
                                    "slpwlo_vec_t {reg} = PACK{n}({});",
                                    lanes.join(", ")
                                ));
                            }
                            (false, to) => {
                                let core = format!("VMUL{n}({ea}, {eb})");
                                // VMUL leaves lanes on the *natural*
                                // product grid with the true integer
                                // width — requantization (to the carried
                                // formats, or onto the capped
                                // `product_fmt` grid consumers track)
                                // starts from there, so shift amounts
                                // and saturation decisions stay honest.
                                let natural: Vec<QFormat> = (0..n)
                                    .map(|l| {
                                        let fa = Self::lane_fmt(&fas, l);
                                        let fb = Self::lane_fmt(&fbs, l);
                                        QFormat::new(fa.iwl + fb.iwl, fa.fwl + fb.fwl)
                                    })
                                    .collect();
                                let target: Vec<QFormat> = match to {
                                    Some(t) => t.clone(),
                                    None => (0..n)
                                        .map(|l| {
                                            product_fmt(
                                                Self::lane_fmt(&fas, l),
                                                Self::lane_fmt(&fbs, l),
                                            )
                                        })
                                        .collect(),
                                };
                                if natural == target {
                                    lines.push(format!("slpwlo_vec_t {reg} = {core};"));
                                } else {
                                    let tmp = format!("{reg}_m");
                                    lines.push(format!("slpwlo_vec_t {tmp} = {core};"));
                                    let val = self.vector_requant(
                                        &format!("{reg}_q"),
                                        tmp,
                                        &natural,
                                        &target,
                                        false,
                                        &mut lines,
                                    )?;
                                    lines.push(format!("slpwlo_vec_t {reg} = {val};"));
                                }
                            }
                        }
                    }
                }
                lines
            }
            MopKind::VUn { src, to } => {
                let (e, fmts) = self.vector_operand(src)?;
                let n = to.len();
                let mut lines = Vec::new();
                let neg = format!("VNEG{n}({e})");
                let tmp = format!("{reg}_n");
                lines.push(format!("slpwlo_vec_t {tmp} = {neg};"));
                let val =
                    self.vector_requant(&format!("{reg}_q"), tmp, &fmts, to, true, &mut lines)?;
                lines.push(format!("slpwlo_vec_t {reg} = {val};"));
                lines
            }
            MopKind::VRequant { src, to, negate } => {
                let (e, fmts) = self.vector_operand(src)?;
                let n = to.len();
                let mut lines = Vec::new();
                let e = if *negate {
                    let tmp = format!("{reg}_n");
                    lines.push(format!("slpwlo_vec_t {tmp} = VNEG{n}({e});"));
                    tmp
                } else {
                    e
                };
                let val =
                    self.vector_requant(&format!("{reg}_q"), e, &fmts, to, *negate, &mut lines)?;
                lines.push(format!("slpwlo_vec_t {reg} = {val};"));
                lines
            }
        };
        Ok(lines)
    }

    /// Casts stored values back to the container type (implicit
    /// conversions are exact after the requantization, the cast keeps
    /// the narrowing explicit).
    fn store_cast(&self, to: &QFormat, loc: &Loc) -> Result<&'static str, CodegenError> {
        let context = match loc {
            Loc::Array(a, _) => format!("state array `{}`", self.storage.arrays[a.index()].name),
            Loc::Param(p, _) => {
                format!("parameter table `{}`", self.storage.params[p.index()].name)
            }
        };
        ctype(to.wl(), &context)
    }

    /// Per-lane grid alignment of a superword (no saturation); emits a
    /// temp statement when any lane shifts.
    fn vector_grid(
        &self,
        tmp: &str,
        expr: String,
        fmts: &[QFormat],
        to: &[QFormat],
        lines: &mut Vec<String>,
    ) -> Result<String, CodegenError> {
        let n = to.len();
        let shifts: Vec<i32> = (0..n)
            .map(|l| Self::lane_fmt(fmts, l).fwl - to[l].fwl)
            .collect();
        if shifts.iter().all(|&s| s == 0) {
            return Ok(expr);
        }
        for (l, &s) in shifts.iter().enumerate() {
            let f = Self::lane_fmt(fmts, l);
            if s < 0 && f.wl() + (-s) > 63 {
                return Err(CodegenError::Unsupported(format!(
                    "lane {l} left alignment by {} bit(s) overflows 64-bit lanes",
                    -s
                )));
            }
        }
        let args: Vec<String> = shifts.iter().map(|s| s.to_string()).collect();
        lines.push(format!(
            "slpwlo_vec_t {tmp} = VSH{n}({expr}, {});",
            args.join(", ")
        ));
        Ok(tmp.to_string())
    }

    /// Per-lane requantization of a superword: grid shifts plus
    /// saturation at the per-lane targets (elided when unreachable on
    /// every lane and not forced).
    fn vector_requant(
        &self,
        tmp: &str,
        expr: String,
        fmts: &[QFormat],
        to: &[QFormat],
        force_sat: bool,
        lines: &mut Vec<String>,
    ) -> Result<String, CodegenError> {
        let e = self.vector_grid(tmp, expr, fmts, to, lines)?;
        let n = to.len();
        let sat_needed = force_sat || (0..n).any(|l| to[l].iwl < Self::lane_fmt(fmts, l).iwl);
        if !sat_needed {
            return Ok(e);
        }
        Ok(self.vsat_expr(e, to))
    }

    fn vsat_expr(&self, expr: String, to: &[QFormat]) -> String {
        let n = to.len();
        let bounds: Vec<String> = to
            .iter()
            .map(|t| format!("{}, {}", int64c(t.min_raw()), int64c(t.max_raw())))
            .collect();
        format!("VSAT{n}({expr}, {})", bounds.join(", "))
    }
}
