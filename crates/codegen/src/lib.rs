//! C back-ends.
//!
//! The paper's flow ends in two generators: a **fixed-point C back-end**
//! ("integer C types and explicit cast/scalings in order to match the
//! fixed-point specification") and a **SIMD C back-end** that "implements
//! the SIMD groups using an abstract C macros API and generates the API's
//! implementation for the specified target processor using its
//! corresponding SIMD intrinsics". This crate emits both artifacts from
//! the *same* lowered machine program, on one shared emission core, so
//! every emitted register is declared, every scaling amount and
//! saturation bound is a compile-time immediate, and both programs are
//! executable — and bit-exact against the reference fixed-point
//! simulation (see the `exec_differential` / `c_differential` test
//! suites):
//!
//! * [`fixed_c::emit_fixed_c`] — self-contained scalar fixed-point C99
//!   with the kernel's loop structure, integer storage at the
//!   specification's container widths, and explicit well-defined
//!   alignment shifts;
//! * [`simd_c::emit_simd_c`] — C99 over the abstract macro API
//!   (`VLOAD2`, `VMUL2`, `VSH2`, `VSAT2`, `PACK2`, ...) generated from
//!   the lowered machine program;
//! * [`intrinsics::emit_intrinsics_header`] — the per-target macro
//!   implementations, with a portable-C fallback (default) and a
//!   vendor-intrinsic mapping behind `SLPWLO_NATIVE_SIMD`.

mod emit;
pub mod error;
pub mod fixed_c;
pub mod intrinsics;
pub mod simd_c;

pub use error::CodegenError;
pub use fixed_c::emit_fixed_c;
pub use intrinsics::emit_intrinsics_header;
pub use simd_c::emit_simd_c;
