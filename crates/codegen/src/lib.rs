//! C back-ends.
//!
//! The paper's flow ends in two generators: a **fixed-point C back-end**
//! ("integer C types and explicit cast/scalings in order to match the
//! fixed-point specification") and a **SIMD C back-end** that "implements
//! the SIMD groups using an abstract C macros API and generates the API's
//! implementation for the specified target processor using its
//! corresponding SIMD intrinsics". This crate emits both artifacts:
//!
//! * [`fixed_c::emit_fixed_c`] — readable scalar fixed-point C with the
//!   kernel's loop structure, integer storage at the specification's
//!   container widths, and explicit alignment shifts;
//! * [`simd_c::emit_simd_c`] — three-address code over the abstract macro
//!   API (`VLOAD2`, `VMUL2`, `VSHR2`, `PACK2`, ...) generated from the
//!   lowered machine program;
//! * [`intrinsics::emit_intrinsics_header`] — the per-target macro
//!   implementations.

pub mod fixed_c;
pub mod intrinsics;
pub mod simd_c;

pub use fixed_c::emit_fixed_c;
pub use intrinsics::emit_intrinsics_header;
pub use simd_c::emit_simd_c;
