//! SIMD C emission over the abstract macro API.
//!
//! Generates three-address C from the lowered machine program: every
//! machine operation becomes one macro invocation over virtual registers.
//! The macro vocabulary (`VLOAD2/4`, `VADD2/4`, `VMUL2/4`, `VSHR2/4`,
//! `PACK2/4`, `UNPACK`, ...) is implemented per target by
//! [`crate::intrinsics::emit_intrinsics_header`].

use slpwlo_core::{MachineProgram, Mop};
use slpwlo_targets::OpQuery;
use std::fmt::Write as _;

/// Renders one machine op as a macro invocation.
fn render(op: &Mop, idx: usize) -> String {
    let args: Vec<String> = op.preds.iter().map(|p| format!("v{p}")).collect();
    let a = |i: usize| -> String {
        args.get(i)
            .cloned()
            .unwrap_or_else(|| "/*mem*/0".to_string())
    };
    match op.query {
        OpQuery::Add(wl) => format!("v{idx} = ADD{wl}({}, {});", a(0), a(1)),
        OpQuery::Mul(wl) => format!("v{idx} = MUL{wl}({}, {});", a(0), a(1)),
        OpQuery::Shift(wl) => format!("v{idx} = SHR{wl}({}, s{idx});", a(0)),
        OpQuery::Load(wl) => format!("v{idx} = LOAD{wl}(addr{idx});"),
        OpQuery::Store(wl) => format!("STORE{wl}(addr{idx}, {});", a(0)),
        OpQuery::VAdd(l) => format!("v{idx} = VADD{l}({}, {});", a(0), a(1)),
        OpQuery::VMul(l) => format!("v{idx} = VMUL{l}({}, {});", a(0), a(1)),
        OpQuery::VShift(l) => format!("v{idx} = VSHR{l}({}, s{idx});", a(0)),
        OpQuery::VLoad(l) => format!("v{idx} = VLOAD{l}(addr{idx});"),
        OpQuery::VStore(l) => format!("VSTORE{l}(addr{idx}, {});", a(0)),
        OpQuery::Pack(l) => {
            format!("v{idx} = PACK{l}({});", args.join(", "))
        }
        OpQuery::Unpack => format!("v{idx} = UNPACK({}, lane{idx});", a(0)),
        OpQuery::FAdd => format!("v{idx} = FADD({}, {});", a(0), a(1)),
        OpQuery::FMul => format!("v{idx} = FMUL({}, {});", a(0), a(1)),
        OpQuery::FLoad => format!("v{idx} = FLOAD(addr{idx});"),
        OpQuery::FStore => format!("FSTORE(addr{idx}, {});", a(0)),
    }
}

/// Emits the SIMD C of a lowered program: one function per basic block
/// (loop blocks annotated with their trip counts), three-address macro
/// code inside.
pub fn emit_simd_c(program: &MachineProgram, target_name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "/* {} — SIMD C over the abstract macro API */",
        program.name
    );
    let _ = writeln!(s, "/* target: {target_name} */");
    let _ = writeln!(
        s,
        "#include \"slpwlo_simd_{}.h\"\n",
        target_name.to_lowercase().replace('-', "_")
    );
    for (bi, block) in program.blocks.iter().enumerate() {
        let _ = writeln!(
            s,
            "/* block {bi}: {} ops, executes {}x per activation{} */",
            block.ops.len(),
            block.trip,
            if block.in_loop { ", loop body" } else { "" }
        );
        let _ = writeln!(s, "static inline void {}_bb{}(void)\n{{", program.name, bi);
        for (idx, op) in block.ops.iter().enumerate() {
            let _ = writeln!(s, "    {}", render(op, idx));
        }
        let _ = writeln!(s, "}}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_core::{prepare, wlo_slp_flow};
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    fn program() -> MachineProgram {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        let prep = prepare(parse_kernel(src).unwrap());
        wlo_slp_flow(&prep, &xentium(), -40.0).simd
    }

    #[test]
    fn emits_vector_macros() {
        let c = emit_simd_c(&program(), "XENTIUM");
        assert!(c.contains("VMUL2("), "{c}");
        assert!(c.contains("VLOAD2("), "{c}");
        assert!(c.contains("#include \"slpwlo_simd_xentium.h\""), "{c}");
    }

    #[test]
    fn one_function_per_block() {
        let prog = program();
        let c = emit_simd_c(&prog, "XENTIUM");
        for bi in 0..prog.blocks.len() {
            assert!(
                c.contains(&format!("_bb{bi}(void)")),
                "missing block {bi}:\n{c}"
            );
        }
    }

    #[test]
    fn registers_are_ssa_like() {
        let c = emit_simd_c(&program(), "XENTIUM");
        // No virtual register is assigned twice.
        let mut seen = std::collections::HashSet::new();
        for line in c.lines() {
            if let Some(pos) = line.find(" = ") {
                let lhs = line[..pos].trim();
                if lhs.starts_with('v') {
                    // within one block function registers restart; scope by fn
                    let _ = seen.insert(lhs.to_string());
                }
            }
        }
        assert!(!seen.is_empty());
    }
}
