//! SIMD C emission over the abstract macro API.
//!
//! Renders the lowered (vectorized) machine program as a compilable
//! C99 translation unit: the same storage declarations and
//! `<kernel>_step` driver as the scalar back-end, with every vector
//! operation expressed through the abstract macro vocabulary
//! (`VLOAD2/4`, `VADD2/4`, `VMUL2/4`, `VSH2/4`, `VSAT2/4`, `PACK2/4`,
//! `SPLAT2/4`, `UNPACK`) implemented per target by
//! [`crate::intrinsics::emit_intrinsics_header`]. Scaling amounts and
//! saturation bounds are compile-time immediates — exactly the explicit
//! alignment information the paper's fig. 2 discussion is about — so
//! the emitted program is executable with the portable fallback and
//! bit-exact against the reference simulation.

use crate::emit::{emit_step, emit_storage};
use crate::error::CodegenError;
use slpwlo_core::MachineProgram;
use std::fmt::Write as _;

/// Emits the SIMD C of a lowered program over the abstract macro API.
///
/// `target_name` selects the generated `slpwlo_simd_<target>.h` macro
/// implementation header (see
/// [`crate::intrinsics::emit_intrinsics_header`]).
pub fn emit_simd_c(program: &MachineProgram, target_name: &str) -> Result<String, CodegenError> {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "/* {} — SIMD C over the abstract macro API */",
        program.name
    );
    let _ = writeln!(s, "/* target: {target_name} */");
    let _ = writeln!(
        s,
        "#include \"slpwlo_simd_{}.h\"\n",
        target_name.to_lowercase().replace('-', "_")
    );
    emit_storage(&mut s, program)?;
    let _ = writeln!(s);
    emit_step(&mut s, program)?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_core::nodes::value_wl;
    use slpwlo_core::{lower_fixed, MachineProgram};
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_fixedpoint::FixedPointSpec;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::dfg::Dfg;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_slp::extract_plain;
    use slpwlo_targets::xentium;

    fn program() -> MachineProgram {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        // Structural extraction over a frozen 16-bit spec: this test is
        // about C emission of vector programs, not about whether the
        // end-to-end flow's scheduler guard finds packing profitable on
        // this tiny kernel (it does not), so the flow layer is bypassed.
        let kernel = parse_kernel(src).unwrap();
        let target = xentium();
        let ranges = determine_ranges(&kernel, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
        let blocks: Vec<_> = collect_blocks(&kernel)
            .into_iter()
            .map(|b| {
                let dfg = Dfg::from_block(&kernel, &b);
                let groups = {
                    let spec_ref = &spec;
                    let dfg_ref = &dfg;
                    extract_plain(&dfg, &target, &move |n| value_wl(spec_ref, dfg_ref, n))
                };
                (b, dfg, groups)
            })
            .collect();
        lower_fixed(&kernel, &spec, &target, &blocks)
    }

    #[test]
    fn emits_vector_macros() {
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        assert!(c.contains("VMUL2("), "{c}");
        assert!(c.contains("VLOAD2("), "{c}");
        assert!(c.contains("#include \"slpwlo_simd_xentium.h\""), "{c}");
    }

    #[test]
    fn emits_complete_step_driver() {
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        assert!(c.contains("void f_step(double x_in, double *y_out)"), "{c}");
        assert!(c.contains("*y_out = ldexp("), "{c}");
        assert!(c.contains("static"), "storage must be declared:\n{c}");
    }

    /// Every symbol the emitted code references is declared: virtual
    /// registers are defined before use and never redefined. The C
    /// emitters number registers positionally off the op list, so this
    /// SSA discipline is exactly the machine-program well-formedness
    /// `slpwlo_verify::verify_program` proves (operands strictly
    /// backwards, ordered by dependence paths, one definition per
    /// variable per block) — the old text-scanning checker that lived
    /// here is now that library pass.
    #[test]
    fn registers_are_ssa_like() {
        let p = program();
        slpwlo_verify::verify_program(&p, &xentium()).unwrap();
        // And the program is a real one, not a vacuous pass.
        assert!(p.blocks.iter().map(|b| b.ops.len()).sum::<usize>() >= 8);
    }

    #[test]
    fn scaling_immediates_are_explicit() {
        // Alignment shifts and saturation bounds appear as compile-time
        // immediates, never as undeclared `s<idx>`/`lane<idx>` symbols.
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        for bad in ["addr", " s0)", "lane0"] {
            assert!(!c.contains(bad), "undeclared symbol `{bad}` in:\n{c}");
        }
    }
}
