//! SIMD C emission over the abstract macro API.
//!
//! Renders the lowered (vectorized) machine program as a compilable
//! C99 translation unit: the same storage declarations and
//! `<kernel>_step` driver as the scalar back-end, with every vector
//! operation expressed through the abstract macro vocabulary
//! (`VLOAD2/4`, `VADD2/4`, `VMUL2/4`, `VSH2/4`, `VSAT2/4`, `PACK2/4`,
//! `SPLAT2/4`, `UNPACK`) implemented per target by
//! [`crate::intrinsics::emit_intrinsics_header`]. Scaling amounts and
//! saturation bounds are compile-time immediates — exactly the explicit
//! alignment information the paper's fig. 2 discussion is about — so
//! the emitted program is executable with the portable fallback and
//! bit-exact against the reference simulation.

use crate::emit::{emit_step, emit_storage};
use crate::error::CodegenError;
use slpwlo_core::MachineProgram;
use std::fmt::Write as _;

/// Emits the SIMD C of a lowered program over the abstract macro API.
///
/// `target_name` selects the generated `slpwlo_simd_<target>.h` macro
/// implementation header (see
/// [`crate::intrinsics::emit_intrinsics_header`]).
pub fn emit_simd_c(program: &MachineProgram, target_name: &str) -> Result<String, CodegenError> {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "/* {} — SIMD C over the abstract macro API */",
        program.name
    );
    let _ = writeln!(s, "/* target: {target_name} */");
    let _ = writeln!(
        s,
        "#include \"slpwlo_simd_{}.h\"\n",
        target_name.to_lowercase().replace('-', "_")
    );
    emit_storage(&mut s, program)?;
    let _ = writeln!(s);
    emit_step(&mut s, program)?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_core::nodes::value_wl;
    use slpwlo_core::{lower_fixed, MachineProgram};
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_fixedpoint::FixedPointSpec;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::dfg::Dfg;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_slp::extract_plain;
    use slpwlo_targets::xentium;

    fn program() -> MachineProgram {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;
        // Structural extraction over a frozen 16-bit spec: this test is
        // about C emission of vector programs, not about whether the
        // end-to-end flow's scheduler guard finds packing profitable on
        // this tiny kernel (it does not), so the flow layer is bypassed.
        let kernel = parse_kernel(src).unwrap();
        let target = xentium();
        let ranges = determine_ranges(&kernel, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
        let blocks: Vec<_> = collect_blocks(&kernel)
            .into_iter()
            .map(|b| {
                let dfg = Dfg::from_block(&kernel, &b);
                let groups = {
                    let spec_ref = &spec;
                    let dfg_ref = &dfg;
                    extract_plain(&dfg, &target, &move |n| value_wl(spec_ref, dfg_ref, n))
                };
                (b, dfg, groups)
            })
            .collect();
        lower_fixed(&kernel, &spec, &target, &blocks)
    }

    #[test]
    fn emits_vector_macros() {
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        assert!(c.contains("VMUL2("), "{c}");
        assert!(c.contains("VLOAD2("), "{c}");
        assert!(c.contains("#include \"slpwlo_simd_xentium.h\""), "{c}");
    }

    #[test]
    fn emits_complete_step_driver() {
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        assert!(c.contains("void f_step(double x_in, double *y_out)"), "{c}");
        assert!(c.contains("*y_out = ldexp("), "{c}");
        assert!(c.contains("static"), "storage must be declared:\n{c}");
    }

    /// Every symbol the emitted code references is declared: virtual
    /// registers are defined before use and never redefined (the SSA
    /// discipline the three-address form promises).
    #[test]
    fn registers_are_ssa_like() {
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        let mut defined = std::collections::HashSet::new();
        let mut definitions = 0usize;
        for line in c.lines() {
            let t = line.trim();
            let lhs = t
                .strip_prefix("int64_t ")
                .or_else(|| t.strip_prefix("slpwlo_vec_t "))
                .and_then(|rest| rest.split(" = ").next());
            if let Some(name) = lhs {
                if name.starts_with('v') {
                    definitions += 1;
                    assert!(
                        defined.insert(name.to_string()),
                        "register `{name}` defined twice:\n{c}"
                    );
                }
            }
            // Uses: any v<block>_<idx> token must already be defined.
            for tok in t
                .split(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                .filter(|tok| {
                    tok.starts_with('v')
                        && tok.len() > 1
                        && tok[1..].chars().next().is_some_and(|c| c.is_ascii_digit())
                })
            {
                if t.starts_with("int64_t ") || t.starts_with("slpwlo_vec_t ") {
                    // The defining token itself is checked on insert.
                    if Some(tok) == lhs {
                        continue;
                    }
                }
                assert!(
                    defined.contains(tok),
                    "register `{tok}` used before definition in `{t}`"
                );
            }
        }
        assert!(
            definitions >= 8,
            "expected a real program, saw {definitions} register definitions:\n{c}"
        );
    }

    /// The guard the old (vacuous) test missed: a duplicated definition
    /// must actually be detected. Construct the failure case directly.
    #[test]
    fn ssa_checker_detects_duplicates() {
        let fake = "int64_t v0_1 = 0;\nint64_t v0_1 = 1;\n";
        let mut defined = std::collections::HashSet::new();
        let mut dup = false;
        for line in fake.lines() {
            if let Some(rest) = line.trim().strip_prefix("int64_t ") {
                if let Some(name) = rest.split(" = ").next() {
                    dup |= !defined.insert(name.to_string());
                }
            }
        }
        assert!(dup, "checker must flag duplicate definitions");
    }

    #[test]
    fn scaling_immediates_are_explicit() {
        // Alignment shifts and saturation bounds appear as compile-time
        // immediates, never as undeclared `s<idx>`/`lane<idx>` symbols.
        let c = emit_simd_c(&program(), "XENTIUM").unwrap();
        for bad in ["addr", " s0)", "lane0"] {
            assert!(!c.contains(bad), "undeclared symbol `{bad}` in:\n{c}");
        }
    }
}
