//! Accuracy evaluation for fixed-point specifications.
//!
//! Implements the role ID.Fix plays in the paper's flow: an **analytical
//! expression of the system's output noise power as a function of the
//! fixed-point specification** (Menard & Sentieys, DATE 2002), used by the
//! WLO algorithms as their `EVALACC` oracle, plus a **bit-accurate
//! fixed-point simulator** used to validate the analytical model and to
//! measure real SQNR.
//!
//! # Model
//!
//! Every operation instance that discards fractional bits injects a
//! quantization error with known mean and variance
//! ([`slpwlo_fixedpoint::noise_stats`]). For linear time-invariant kernels
//! (all the paper's benchmarks), each error propagates to the output
//! through a fixed impulse response `h`; the output noise power is
//!
//! ```text
//! P = (Σ_src mean_src · G1_src)² + Σ_src var_src · G2_src
//! G1 = Σ h[m]      (DC gain, coherent accumulation of the bias)
//! G2 = Σ h[m]²     (energy gain, incoherent accumulation of the variance)
//! ```
//!
//! `G1`/`G2` are measured **exactly** by injecting unit impulses at every
//! execution instance of every potential noise source and running the
//! floating-point reference ([`gains`]) — no closed-form transfer functions
//! are required, so arbitrary loop structures work. The measurement is done
//! once per kernel; each `EVALACC` afterwards is a cheap dot product, which
//! is what makes the thousands of accuracy queries issued by the joint
//! WLO/SLP algorithms affordable.

pub mod gains;
pub mod incremental;
pub mod model;
pub mod simulate;

pub use gains::{GainOptions, NoiseGains};
pub use incremental::IncrementalEvaluator;
pub use model::{AccuracyEvaluator, AnalyticalEvaluator, EvalOptions};
pub use simulate::{measure_noise, simulate_fixed, NoiseMeasurement};
