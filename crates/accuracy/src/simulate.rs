//! Bit-accurate fixed-point simulation.
//!
//! Executes a kernel under a [`FixedPointSpec`] exactly as the generated
//! fixed-point C code would: additions pre-align operands to the result
//! grid, multiplications compute the exact product then re-quantize,
//! stores quantize to the array storage grid, constants and coefficients
//! are rounded once at "compile time". Comparing against the
//! double-precision reference yields the measured output noise power used
//! to validate the analytical model.

use slpwlo_fixedpoint::quantize::{OverflowMode, QuantizeMode};
use slpwlo_fixedpoint::spec::{FixedPointSpec, SpecKey};
use slpwlo_fixedpoint::{FxValue, QFormat};
use slpwlo_ir::interp::{ExecCtx, Executor, FloatSem, Semantics};
use slpwlo_ir::types::{ArrayId, BinOp, ExprId, InputId, ParamId, UnOp};
use slpwlo_ir::Kernel;

/// Fixed-point value semantics driven by a [`FixedPointSpec`].
#[derive(Debug, Clone)]
pub struct FixedSem<'s> {
    spec: &'s FixedPointSpec,
    mode: QuantizeMode,
    ovf: OverflowMode,
}

impl<'s> FixedSem<'s> {
    /// Creates the semantics with the paper's defaults (truncation,
    /// saturation).
    pub fn new(spec: &'s FixedPointSpec) -> Self {
        FixedSem {
            spec,
            mode: QuantizeMode::Truncate,
            ovf: OverflowMode::Saturate,
        }
    }

    /// Overrides the signal-path quantization mode.
    pub fn with_mode(mut self, mode: QuantizeMode) -> Self {
        self.mode = mode;
        self
    }

    fn fmt(&self, e: ExprId) -> QFormat {
        self.spec.format(SpecKey::Expr(e))
    }
}

impl Semantics for FixedSem<'_> {
    type Value = FxValue;

    fn zero(&mut self) -> FxValue {
        FxValue::zero(QFormat::new(1, 30))
    }

    fn constant(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> FxValue {
        // Literals are rounded once at compile time.
        FxValue::from_f64(v, self.fmt(e), QuantizeMode::Round, self.ovf)
    }

    fn input(&mut self, _c: ExecCtx, e: ExprId, _i: InputId, raw: f64) -> FxValue {
        FxValue::from_f64(raw, self.fmt(e), self.mode, self.ovf)
    }

    fn param(&mut self, _c: ExecCtx, _e: ExprId, p: ParamId, _idx: i64, raw: f64) -> FxValue {
        // Coefficient tables are rounded once at compile time.
        let fmt = self.spec.format(SpecKey::Param(p));
        FxValue::from_f64(raw, fmt, QuantizeMode::Round, self.ovf)
    }

    fn load(&mut self, _c: ExecCtx, _e: ExprId, stored: FxValue) -> FxValue {
        stored
    }

    fn un(&mut self, _c: ExecCtx, e: ExprId, op: UnOp, a: FxValue) -> FxValue {
        match op {
            UnOp::Neg => a.neg(self.fmt(e), self.mode, self.ovf),
        }
    }

    fn bin(&mut self, _c: ExecCtx, e: ExprId, op: BinOp, a: FxValue, b: FxValue) -> FxValue {
        let out = self.fmt(e);
        match op {
            BinOp::Mul => a.mul(b, out, self.mode, self.ovf),
            BinOp::Add | BinOp::Sub => {
                // Pre-align each operand to the result grid, keeping its
                // own integer bits (a narrow result IWL must clamp only
                // after the arithmetic). The integer width is capped so
                // the intermediate format stays within a 63-bit raw
                // container: the cap is bookkeeping only — values are
                // bounded by their (<= datapath-wide) producing formats
                // and can never reach it, but without the cap a spec
                // with a large IWL (scaling optimization trades FWL for
                // IWL) overflows the format's raw-bound computation.
                let pre_align =
                    |iwl: i32, fwl: i32| QFormat::new(iwl.clamp(1 - fwl, 62 - fwl), fwl);
                let aa = a.requantize(
                    pre_align(a.format().iwl, out.fwl),
                    self.mode,
                    OverflowMode::Saturate,
                );
                let bb = b.requantize(
                    pre_align(b.format().iwl, out.fwl),
                    self.mode,
                    OverflowMode::Saturate,
                );
                match op {
                    BinOp::Add => aa.add(bb, out, self.mode, self.ovf),
                    BinOp::Sub => aa.sub(bb, out, self.mode, self.ovf),
                    BinOp::Mul => unreachable!(),
                }
            }
        }
    }

    fn store(&mut self, array: ArrayId, v: FxValue) -> FxValue {
        v.requantize(self.spec.format(SpecKey::Array(array)), self.mode, self.ovf)
    }

    fn to_f64(&self, v: FxValue) -> f64 {
        v.to_f64()
    }
}

/// Runs the kernel in fixed point and returns `outputs[o][n]`.
pub fn simulate_fixed(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    inputs: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let mut ex = Executor::new(kernel, FixedSem::new(spec));
    ex.run(inputs)
}

/// Result of comparing fixed-point and floating-point runs.
#[derive(Debug, Clone, Copy)]
pub struct NoiseMeasurement {
    /// Mean squared output error (noise power, DC bias included).
    pub power: f64,
    /// `10·log10(power)`; `-inf` for a bit-exact run.
    pub db: f64,
    /// Largest absolute output error observed.
    pub max_abs_error: f64,
    /// Number of output samples compared.
    pub samples: usize,
}

/// Measures the output noise power of `spec` against the double-precision
/// reference on the given input streams.
pub fn measure_noise(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    inputs: &[Vec<f64>],
) -> NoiseMeasurement {
    let fixed = simulate_fixed(kernel, spec, inputs);
    let mut ex = Executor::new(kernel, FloatSem);
    let reference = ex.run(inputs);
    let mut sum2 = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut n = 0usize;
    for (fx, fl) in fixed.iter().zip(&reference) {
        for (a, b) in fx.iter().zip(fl) {
            let e = a - b;
            sum2 += e * e;
            max_abs = max_abs.max(e.abs());
            n += 1;
        }
    }
    let power = if n == 0 { 0.0 } else { sum2 / n as f64 };
    let db = if power > 0.0 {
        10.0 * power.log10()
    } else {
        f64::NEG_INFINITY
    };
    NoiseMeasurement {
        power,
        db,
        max_abs_error: max_abs,
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccuracyEvaluator, AnalyticalEvaluator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn setup(wl: i32) -> (Kernel, FixedPointSpec) {
        let k = parse_kernel(FIR8).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, wl);
        (k, spec)
    }

    #[test]
    fn exact_inputs_are_bit_exact_at_32() {
        // Inputs on a coarse grid + exactly representable coefficients
        // produce zero error at 32 bits. The coefficients stay strictly
        // inside the positive format bound (a value exactly at `2^(iwl-1)`
        // would saturate by one ulp, Q-format's asymmetric range).
        let src = r#"
kernel ma {
    input x range [-1, 1];
    output y;
    array dl[2];
    shiftin dl <- x;
    y = 0.375 * dl[0] + 0.1875 * dl[1];
}
"#;
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let xs: Vec<f64> = (0..64).map(|i| ((i % 16) as f64 - 8.0) / 8.0).collect();
        let m = measure_noise(&k, &spec, &[xs]);
        assert_eq!(m.power, 0.0, "exact grid data must be bit-exact");
        assert!(m.db.is_infinite() && m.db < 0.0);
    }

    #[test]
    fn measured_noise_grows_as_wl_shrinks() {
        let xs = white_noise(2048, 7);
        let (k, s32) = setup(32);
        let (_, s16) = setup(16);
        let (_, s12) = setup(12);
        let m32 = measure_noise(&k, &s32, std::slice::from_ref(&xs));
        let m16 = measure_noise(&k, &s16, std::slice::from_ref(&xs));
        let m12 = measure_noise(&k, &s12, &[xs]);
        assert!(
            m32.db < m16.db && m16.db < m12.db,
            "{} {} {}",
            m32.db,
            m16.db,
            m12.db
        );
    }

    #[test]
    fn analytical_model_matches_simulation() {
        // The headline validation: predicted vs measured noise power
        // within a few dB across word lengths.
        let xs = white_noise(8192, 42);
        for wl in [12, 16, 20, 24] {
            let (k, spec) = setup(wl);
            let eval = AnalyticalEvaluator::with_defaults(&k);
            let predicted = eval.noise_db(&spec);
            let measured = measure_noise(&k, &spec, std::slice::from_ref(&xs)).db;
            let delta = (predicted - measured).abs();
            assert!(
                delta < 4.0,
                "wl={wl}: predicted {predicted:.2} dB vs measured {measured:.2} dB"
            );
        }
    }

    #[test]
    fn saturation_bounds_overflow() {
        // Force a tiny IWL and check outputs stay within format bounds.
        let (k, mut spec) = setup(16);
        // Shrink the accumulator format range: IWL 1 cannot hold sums > 1.
        for (id, node) in k.exprs() {
            if matches!(node, slpwlo_ir::ExprNode::Bin(BinOp::Add, _, _)) {
                spec.set_format(SpecKey::Expr(id), QFormat::new(1, 15));
            }
        }
        let xs = vec![1.0; 64];
        let out = simulate_fixed(&k, &spec, &[xs]);
        for &v in &out[0] {
            assert!(
                (-1.0..1.0).contains(&v),
                "saturated output {v} out of Q1.15 range"
            );
        }
    }

    #[test]
    fn truncation_biases_low() {
        // With truncation the mean error must be negative (DC bias).
        let xs = white_noise(4096, 3);
        let (k, spec) = setup(12);
        let fixed = simulate_fixed(&k, &spec, std::slice::from_ref(&xs));
        let mut ex = Executor::new(&k, FloatSem);
        let reference = ex.run(&[xs]);
        let mean: f64 = fixed[0]
            .iter()
            .zip(&reference[0])
            .map(|(a, b)| a - b)
            .sum::<f64>()
            / fixed[0].len() as f64;
        assert!(mean < 0.0, "truncation bias must be negative, got {mean}");
    }
}
