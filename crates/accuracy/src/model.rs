//! Analytical output-noise-power evaluation (`EVALACC`).
//!
//! Combines the per-source noise statistics of
//! [`slpwlo_fixedpoint::noise_stats`] with the measured node-to-output
//! gains of [`crate::gains`]. The evaluator mirrors what the generated
//! fixed-point code actually does:
//!
//! * additions/subtractions **pre-align** their operands to the result
//!   grid (two potential noise sources, one per operand shift) — a 32-bit
//!   datapath cannot hold the exact wide sum;
//! * multiplications compute the exact product and re-quantize once;
//! * negations re-quantize once (usually a no-op);
//! * input reads convert a continuous-amplitude sample (one source);
//! * values stored to a state array are additionally quantized to the
//!   array's storage grid, folded into the producing node's source.

use crate::gains::{measure_gains_with, GainOptions, NoiseGains};
use slpwlo_fixedpoint::quantize::{noise_stats, QuantizeMode};
use slpwlo_fixedpoint::spec::{FixedPointSpec, SpecKey};
use slpwlo_ir::cone::{var_flow, ConeIndex};
use slpwlo_ir::types::{ArrayId, BinOp, ExprId, ParamId, UnOp};
use slpwlo_ir::{ExprNode, Kernel, Stmt};
use std::collections::HashMap;

/// Options for the analytical evaluator.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Quantization mode of the signal path (the paper assumes
    /// truncation).
    pub mode: QuantizeMode,
    /// Gain-measurement options.
    pub gains: GainOptions,
}

/// Oracle deciding whether a specification meets an accuracy constraint.
///
/// The WLO algorithms are written against this trait so alternative
/// accuracy evaluators can be plugged in, mirroring the paper's remark
/// that its WLO is "completely decoupled" from the accuracy evaluation.
///
/// # Trial protocol
///
/// The WLO search loops are "set, evaluate, maybe revert" loops over a
/// [`FixedPointSpec`] transaction. The `trial_*`/`commit_trial`/
/// `rollback_trial` methods expose that shape to the evaluator so a
/// stateful implementation (e.g. [`crate::IncrementalEvaluator`]) can
/// re-evaluate only the noise sources the transaction touched. The
/// default implementations fall back to a stateless full recompute, so
/// plain evaluators keep working unchanged.
///
/// Callers must keep spec transactions and evaluator trials in lockstep:
///
/// ```text
/// eval.begin(&spec);                    // once, before the first trial
/// let mark = spec.mark();
/// spec.set_wl(key, wl);                 // any number of journaled writes
/// if eval.trial_meets(&spec, mark, a_db) {
///     spec.commit(mark); eval.commit_trial();
/// } else {
///     spec.rollback(mark); eval.rollback_trial();
/// }
/// ```
///
/// Writes that bypass a trial (e.g. restoring a saved snapshot) must be
/// reported through [`AccuracyEvaluator::observe`] before the next trial.
pub trait AccuracyEvaluator {
    /// Output noise power of the specification, in dB (`10·log10 P`).
    /// `-inf` when the specification introduces no error.
    fn noise_db(&self, spec: &FixedPointSpec) -> f64;

    /// Returns `true` when the specification's noise stays within the
    /// constraint `a_db` (maximum tolerable noise power in dB).
    fn meets(&self, spec: &FixedPointSpec, a_db: f64) -> bool {
        self.noise_db(spec) <= a_db
    }

    /// Synchronizes internal caches with `spec` before a search loop
    /// starts issuing trials. Stateless evaluators ignore it.
    fn begin(&self, spec: &FixedPointSpec) {
        let _ = spec;
    }

    /// Noise power (dB) of `spec` with an open transaction whose writes
    /// started at `mark` ([`FixedPointSpec::mark`]). At most one trial may
    /// be outstanding; resolve it with [`AccuracyEvaluator::commit_trial`]
    /// or [`AccuracyEvaluator::rollback_trial`].
    fn trial_noise_db(&self, spec: &FixedPointSpec, mark: usize) -> f64 {
        let _ = mark;
        self.noise_db(spec)
    }

    /// [`AccuracyEvaluator::trial_noise_db`] against a constraint.
    fn trial_meets(&self, spec: &FixedPointSpec, mark: usize, a_db: f64) -> bool {
        self.trial_noise_db(spec, mark) <= a_db
    }

    /// Accepts the outstanding trial: the journaled writes it evaluated
    /// are now part of the committed state.
    fn commit_trial(&self) {}

    /// Discards the outstanding trial; the caller rolls the spec back to
    /// the trial's mark.
    fn rollback_trial(&self) {}

    /// Notifies the evaluator of journaled writes since `mark` that were
    /// applied *without* a trial (snapshot restores, forced moves) and are
    /// permanent. Stateless evaluators ignore it.
    fn observe(&self, spec: &FixedPointSpec, mark: usize) {
        let _ = (spec, mark);
    }
}

/// Where a value's quantization grid comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deliver {
    /// Exactly representable (literal constants, initial zeros).
    Exact,
    /// Grid of the node addressed by the key.
    Key(SpecKey),
}

/// One potential noise source.
#[derive(Debug, Clone)]
struct Source {
    expr: ExprId,
    kind: SourceKind,
    /// Array whose storage grid additionally quantizes this node's value
    /// (the node is a store/shift-in root).
    store_array: Option<ArrayId>,
}

#[derive(Debug, Clone)]
enum SourceKind {
    /// Float-to-fixed conversion of an input sample.
    Input,
    /// Compile-time rounding of a coefficient table entry. Deterministic
    /// in reality; modelled as an unbiased uniform source, the standard
    /// approximation — without it WLO could narrow coefficient storage
    /// for free.
    Param(ParamId),
    /// Addition/subtraction with pre-aligned operands.
    AddSub { a: Vec<Deliver>, b: Vec<Deliver> },
    /// Multiplication (exact product, one re-quantization).
    Mul { a: Vec<Deliver>, b: Vec<Deliver> },
    /// Negation (pass-through re-quantization).
    Neg { a: Vec<Deliver> },
}

/// The analytical noise-power evaluator.
#[derive(Debug)]
pub struct AnalyticalEvaluator {
    gains: NoiseGains,
    sources: Vec<Source>,
    mode: QuantizeMode,
}

impl AnalyticalEvaluator {
    /// Builds the evaluator for a kernel: measures noise gains (the
    /// expensive, once-per-kernel part) and resolves operand grids.
    pub fn new(kernel: &Kernel, opts: &EvalOptions) -> Self {
        Self::new_with_cone(kernel, opts, None)
    }

    /// [`new`](Self::new) against a caller-provided [`ConeIndex`], so a
    /// pipeline that already built one (e.g. `prepare_with`) does not pay
    /// for it twice.
    pub fn new_with_cone(kernel: &Kernel, opts: &EvalOptions, cone: Option<&ConeIndex>) -> Self {
        let gains = measure_gains_with(kernel, &opts.gains, cone);
        let sources = enumerate_sources(kernel);
        AnalyticalEvaluator {
            gains,
            sources,
            mode: opts.mode,
        }
    }

    /// Builds the evaluator with default options.
    pub fn with_defaults(kernel: &Kernel) -> Self {
        Self::new(kernel, &EvalOptions::default())
    }

    /// Linear output noise power for a specification.
    ///
    /// Accumulation contract: per-source `(bias, var)` contributions are
    /// computed by [`Self::contribution_at`] and summed in source order —
    /// the *same* per-source values and the *same* total fold the
    /// incremental engine uses, so both produce bit-identical powers.
    pub fn noise_power(&self, spec: &FixedPointSpec) -> f64 {
        let mut bias = 0.0; // Σ mean · G1
        let mut var = 0.0; // Σ var · G2
        for i in 0..self.sources.len() {
            let (b, v) = self.contribution_at(i, spec);
            bias += b;
            var += v;
        }
        bias * bias + var
    }

    /// Number of potential noise sources the evaluator tracks.
    pub(crate) fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// The `(bias, var)` contribution of source `i` under `spec` — the
    /// shared single copy of the per-source noise model. Local pushes
    /// accumulate in a fixed order so repeated calls are bit-identical.
    pub(crate) fn contribution_at(&self, i: usize, spec: &FixedPointSpec) -> (f64, f64) {
        let src = &self.sources[i];
        let (g1, g2) = self.gains.get(src.expr);
        if g1 == 0.0 && g2 == 0.0 {
            return (0.0, 0.0);
        }
        let out_fmt = spec.format(SpecKey::Expr(src.expr));
        let mut q_out = out_fmt.step();
        if let Some(a) = src.store_array {
            q_out = q_out.max(spec.format(SpecKey::Array(a)).step());
        }
        let mut bias = 0.0;
        let mut var = 0.0;
        let mut push = |q_in: f64, q_out: f64| {
            let (m, v) = noise_stats(q_in.min(q_out), q_out, self.mode);
            bias += m * g1;
            var += v * g2;
        };
        match &src.kind {
            SourceKind::Input => push(0.0, q_out),
            SourceKind::Param(p) => {
                // Unbiased (round-to-nearest at compile time); only
                // the variance term contributes.
                let q = spec.format(SpecKey::Param(*p)).step();
                let (_, v) = noise_stats(0.0, q, QuantizeMode::Round);
                var += v * g2;
            }
            SourceKind::AddSub { a, b } => {
                // One source per pre-aligned operand shift. Operands
                // that can only carry exact values (literal constants,
                // initial zeros) truncate without error and contribute
                // no source.
                if let Some(q) = min_key_step(spec, a) {
                    push(q, q_out);
                }
                if let Some(q) = min_key_step(spec, b) {
                    push(q, q_out);
                }
            }
            SourceKind::Mul { a, b } => {
                // Exact operands scale the other grid by a non-power-
                // of-two factor; treat the product grid as continuous
                // (conservative).
                let qa = min_key_step(spec, a).unwrap_or(0.0);
                let qb = min_key_step(spec, b).unwrap_or(0.0);
                push(qa * qb, q_out);
            }
            SourceKind::Neg { a } => {
                if let Some(q) = min_key_step(spec, a) {
                    push(q, q_out);
                }
            }
        }
        (bias, var)
    }

    /// Every [`SpecKey`] whose format can change source `i`'s
    /// contribution — the edge set of the inverted index the incremental
    /// engine builds. Conservative: a listed key may leave the value
    /// unchanged (re-evaluation is then a no-op), but no key outside the
    /// list can affect it.
    pub(crate) fn source_keys(&self, i: usize, out: &mut Vec<SpecKey>) {
        let src = &self.sources[i];
        out.clear();
        out.push(SpecKey::Expr(src.expr));
        if let Some(a) = src.store_array {
            out.push(SpecKey::Array(a));
        }
        fn push_delivered(out: &mut Vec<SpecKey>, keys: &[Deliver]) {
            for d in keys {
                if let Deliver::Key(k) = d {
                    out.push(*k);
                }
            }
        }
        match &src.kind {
            SourceKind::Input => {}
            SourceKind::Param(p) => out.push(SpecKey::Param(*p)),
            SourceKind::AddSub { a, b } | SourceKind::Mul { a, b } => {
                push_delivered(out, a);
                push_delivered(out, b);
            }
            SourceKind::Neg { a } => push_delivered(out, a),
        }
    }
}

impl AccuracyEvaluator for AnalyticalEvaluator {
    fn noise_db(&self, spec: &FixedPointSpec) -> f64 {
        let p = self.noise_power(spec);
        if p <= 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * p.log10()
        }
    }
}

/// Finest grid among the *keyed* deliveries of a value; `None` when the
/// value can only be exact (literal constants, initial zeros), which
/// truncates without error.
fn min_key_step(spec: &FixedPointSpec, keys: &[Deliver]) -> Option<f64> {
    keys.iter()
        .filter_map(|d| match d {
            Deliver::Exact => None,
            Deliver::Key(k) => Some(spec.format(*k).step()),
        })
        .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.min(s))))
}

// ---------------------------------------------------------------------------
// Static source enumeration
// ---------------------------------------------------------------------------

fn enumerate_sources(kernel: &Kernel) -> Vec<Source> {
    let store_roots = store_roots(kernel);
    // Possible defining root expressions per `ReadVar` — the same
    // two-pass structured dataflow the cone index is built from.
    let reaching = var_flow(kernel).reaching;
    let mut sources = Vec::new();
    for (id, node) in kernel.exprs() {
        let kind = match node {
            ExprNode::ReadInput(_) => SourceKind::Input,
            ExprNode::LoadParam(p, _) => SourceKind::Param(*p),
            ExprNode::Bin(BinOp::Add, a, b) | ExprNode::Bin(BinOp::Sub, a, b) => {
                SourceKind::AddSub {
                    a: delivered(kernel, *a, &reaching),
                    b: delivered(kernel, *b, &reaching),
                }
            }
            ExprNode::Bin(BinOp::Mul, a, b) => SourceKind::Mul {
                a: delivered(kernel, *a, &reaching),
                b: delivered(kernel, *b, &reaching),
            },
            ExprNode::Unary(UnOp::Neg, a) => SourceKind::Neg {
                a: delivered(kernel, *a, &reaching),
            },
            _ => continue,
        };
        sources.push(Source {
            expr: id,
            kind,
            store_array: store_roots.get(&id).copied(),
        });
    }
    sources
}

/// Map from store/shift-in root expressions to the written array.
fn store_roots(kernel: &Kernel) -> HashMap<ExprId, ArrayId> {
    let mut map = HashMap::new();
    kernel.visit_stmts(&mut |s, _| match s {
        Stmt::Store(a, _, e) | Stmt::ShiftIn(a, e) => {
            map.insert(*e, *a);
        }
        _ => {}
    });
    map
}

/// Grids a value produced by `e` can be delivered on.
fn delivered(kernel: &Kernel, e: ExprId, reaching: &HashMap<ExprId, Vec<ExprId>>) -> Vec<Deliver> {
    let mut out = Vec::new();
    let mut stack = vec![e];
    let mut seen = Vec::new();
    while let Some(e) = stack.pop() {
        if seen.contains(&e) {
            continue;
        }
        seen.push(e);
        match kernel.expr(e) {
            ExprNode::Const(_) => push_unique(&mut out, Deliver::Exact),
            ExprNode::ReadInput(_) => push_unique(&mut out, Deliver::Key(SpecKey::Expr(e))),
            ExprNode::LoadParam(p, _) => push_unique(&mut out, Deliver::Key(SpecKey::Param(*p))),
            ExprNode::LoadArray(a, _) => push_unique(&mut out, Deliver::Key(SpecKey::Array(*a))),
            ExprNode::Bin(..) | ExprNode::Unary(..) => {
                push_unique(&mut out, Deliver::Key(SpecKey::Expr(e)))
            }
            ExprNode::ReadVar(_) => match reaching.get(&e) {
                Some(defs) if !defs.is_empty() => stack.extend(defs.iter().copied()),
                _ => push_unique(&mut out, Deliver::Exact), // initial zero
            },
        }
    }
    out
}

fn push_unique(v: &mut Vec<Deliver>, d: Deliver) {
    if !v.contains(&d) {
        v.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;

    const FIR4: &str = r#"
kernel fir4 {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.5, 0.25, -0.125, 0.0625 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn setup(src: &str, wl: i32) -> (Kernel, FixedPointSpec, AnalyticalEvaluator) {
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, wl);
        let eval = AnalyticalEvaluator::with_defaults(&k);
        (k, spec, eval)
    }

    #[test]
    fn wider_words_mean_less_noise() {
        let (_, spec32, eval) = setup(FIR4, 32);
        let (_, spec16, _) = setup(FIR4, 16);
        let (_, spec8, _) = setup(FIR4, 8);
        let n32 = eval.noise_db(&spec32);
        let n16 = eval.noise_db(&spec16);
        let n8 = eval.noise_db(&spec8);
        assert!(
            n32 < n16 && n16 < n8,
            "noise must grow as WL shrinks: {n32} {n16} {n8}"
        );
    }

    #[test]
    fn noise_levels_are_plausible() {
        // Q1.15-ish data: input conversion var = q^2/12 with q = 2^-15,
        // i.e. about -98 dB; the whole 16-bit FIR must land within a few
        // tens of dB of that.
        let (_, spec, eval) = setup(FIR4, 16);
        let db = eval.noise_db(&spec);
        assert!(db < -70.0 && db > -110.0, "16-bit FIR noise {db} dB");
    }

    #[test]
    fn meets_is_monotone_in_constraint() {
        let (_, spec, eval) = setup(FIR4, 16);
        let db = eval.noise_db(&spec);
        assert!(eval.meets(&spec, db + 1.0));
        assert!(!eval.meets(&spec, db - 1.0));
    }

    #[test]
    fn shrinking_one_node_increases_noise() {
        let (k, mut spec, eval) = setup(FIR4, 32);
        let before = eval.noise_power(&spec);
        // Find the accumulator add and shrink it to 8 bits.
        let (add, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Add, _, _)))
            .unwrap();
        spec.set_wl(SpecKey::Expr(add), 8);
        let after = eval.noise_power(&spec);
        assert!(
            after > before * 10.0,
            "8-bit accumulator must dominate: {before} -> {after}"
        );
    }

    #[test]
    fn rollback_restores_noise() {
        let (k, mut spec, eval) = setup(FIR4, 32);
        let before = eval.noise_power(&spec);
        let mark = spec.mark();
        let (mul, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)))
            .unwrap();
        spec.set_wl(SpecKey::Expr(mul), 8);
        assert!(eval.noise_power(&spec) > before);
        spec.rollback(mark);
        assert_eq!(eval.noise_power(&spec), before);
    }

    #[test]
    fn reaching_defs_see_back_edges() {
        let k = parse_kernel(FIR4).unwrap();
        let reaching = var_flow(&k).reaching;
        // The `acc` read inside the loop must see both the init assign and
        // the loop's own assign.
        let mut found = false;
        for (id, node) in k.exprs() {
            if let ExprNode::ReadVar(_) = node {
                if let Some(defs) = reaching.get(&id) {
                    if defs.len() == 2 {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "accumulator read must have two reaching defs");
    }

    #[test]
    fn array_storage_grid_caps_store_roots() {
        let (k, mut spec, eval) = setup(FIR4, 32);
        let before = eval.noise_power(&spec);
        // Shrinking the delay-line storage quantizes the input conversion
        // root stored into it.
        spec.set_wl(SpecKey::Array(ArrayId(0)), 8);
        let after = eval.noise_power(&spec);
        assert!(after > before, "coarser array storage must add noise");
        let _ = k;
    }
}
