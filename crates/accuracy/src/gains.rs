//! Noise-gain analysis by impulse injection.
//!
//! For each potential noise source (binary/unary operation instances and
//! input-conversion sites) and each of its execution instances within one
//! activation, a unit impulse is added to the node's output during a
//! zero-input run and the resulting output deviation sequence `h[m]` is
//! recorded. `G1 = Σ h` and `G2 = Σ h²` accumulated over execution
//! instances fully characterise how that node's quantization error reaches
//! the output of an LTI kernel.

use slpwlo_ir::cone::ConeIndex;
use slpwlo_ir::interp::{BatchExecutor, ExecCtx, Executor, FloatSem, ImpulseChannel, Semantics};
use slpwlo_ir::types::{BinOp, ExprId, InputId, ParamId, UnOp};
use slpwlo_ir::{ExprNode, Kernel, Stmt};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options for the gain measurement.
#[derive(Debug, Clone, Copy)]
pub struct GainOptions {
    /// Minimum number of activations to simulate after the impulse.
    pub min_activations: usize,
    /// Hard cap on simulated activations (bounds IIR tail measurement).
    pub max_activations: usize,
    /// The measurement stops once the tail energy of a chunk falls below
    /// this fraction of the total energy.
    pub tail_epsilon: f64,
    /// Activations for the stochastic coefficient-sensitivity measurement.
    pub param_activations: usize,
    /// RNG seed for the coefficient-sensitivity measurement.
    pub param_seed: u64,
    /// Worker threads for the impulse-source sweep (`0` = one per
    /// available core). Results are identical for any thread count.
    pub threads: usize,
    /// Restrict each impulse lane's evaluation to its source's influence
    /// cone and retire lanes past their deviation lifetime (see
    /// [`ConeIndex`]). Results are bitwise identical either way; `false`
    /// forces the dense sweep (ablation / differential testing).
    pub cone: bool,
}

impl Default for GainOptions {
    fn default() -> Self {
        GainOptions {
            min_activations: 64,
            max_activations: 8192,
            tail_epsilon: 1e-12,
            param_activations: 1024,
            param_seed: 0x9A1A5,
            threads: 0,
            cone: true,
        }
    }
}

/// `G1`/`G2` gains from every potential noise source to the kernel
/// output, stored densely by expression arena index.
#[derive(Debug, Clone)]
pub struct NoiseGains {
    /// `(G1, G2)` per expression, both summed over the source's
    /// execution instances and over all outputs; `None` for expressions
    /// that are not measured sources (non-source nodes, dead arena
    /// nodes).
    gains: Vec<Option<(f64, f64)>>,
    /// Number of `Some` entries.
    measured: usize,
}

impl NoiseGains {
    fn new(expr_count: usize) -> Self {
        NoiseGains {
            gains: vec![None; expr_count],
            measured: 0,
        }
    }

    fn insert(&mut self, e: ExprId, g: (f64, f64)) {
        let slot = &mut self.gains[e.index()];
        if slot.is_none() {
            self.measured += 1;
        }
        *slot = Some(g);
    }

    /// `(G1, G2)` for a source; zero for nodes that never execute.
    #[inline]
    pub fn get(&self, e: ExprId) -> (f64, f64) {
        self.gains
            .get(e.index())
            .copied()
            .flatten()
            .unwrap_or((0.0, 0.0))
    }

    /// Iterates over `(expr, (g1, g2))` pairs of measured sources, in
    /// ascending expression order.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, (f64, f64))> + '_ {
        self.gains
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.map(|g| (ExprId(i as u32), g)))
    }

    /// Number of measured sources.
    pub fn len(&self) -> usize {
        self.measured
    }

    /// True if no source was measured.
    pub fn is_empty(&self) -> bool {
        self.measured == 0
    }
}

/// Expressions that can inject quantization noise under some
/// specification: binary/unary operations, input conversions and
/// coefficient-table loads.
pub fn noise_source_exprs(kernel: &Kernel) -> Vec<ExprId> {
    kernel
        .exprs()
        .filter(|(_, n)| {
            matches!(
                n,
                ExprNode::Bin(..)
                    | ExprNode::Unary(..)
                    | ExprNode::ReadInput(_)
                    | ExprNode::LoadParam(..)
            )
        })
        .map(|(id, _)| id)
        .collect()
}

/// Executions per activation for every expression (product of enclosing
/// trip counts; zero for dead arena nodes).
pub fn expr_executions(kernel: &Kernel) -> Vec<u64> {
    let mut execs = vec![0u64; kernel.expr_count()];
    kernel.visit_stmts(&mut |s, stack| {
        let trips: u64 = stack.iter().map(|&(_, c)| c as u64).product();
        let root = match s {
            Stmt::Assign(_, e)
            | Stmt::Store(_, _, e)
            | Stmt::ShiftIn(_, e)
            | Stmt::Output(_, e) => Some(*e),
            Stmt::For { .. } => None,
        };
        if let Some(root) = root {
            mark(kernel, root, trips, &mut execs);
        }
    });
    return execs;

    fn mark(kernel: &Kernel, e: ExprId, trips: u64, execs: &mut [u64]) {
        execs[e.index()] += trips;
        for op in kernel.expr(e).operands() {
            mark(kernel, op, trips, execs);
        }
    }
}

/// Measures `G1`/`G2` for every noise source of the kernel.
///
/// Linearity assumption: the kernel must be LTI in its signals (signals
/// may only be multiplied by parameters/constants, as in all the paper's
/// benchmarks); responses are then exact, not approximations.
///
/// Impulses are propagated in batches — one [`BatchExecutor`] sweep
/// carries a lane of deviation state per pending (source × execution
/// instance) impulse, the lanes retiring early on the `tail_epsilon`
/// criterion — and the source sweep is sharded across `threads` scoped
/// workers. With `opts.cone` set (the default) each lane is further
/// evaluated only over its source's influence cone and retired as soon
/// as its deviation lifetime has provably elapsed. Per-source results
/// are bitwise identical to the one run per impulse of
/// [`measure_gains_reference`], for any thread count and cone toggle.
pub fn measure_gains(kernel: &Kernel, opts: &GainOptions) -> NoiseGains {
    measure_gains_with(kernel, opts, None)
}

/// [`measure_gains`] against a caller-provided [`ConeIndex`] (built once
/// per kernel and reused across analyses). Builds a local index when
/// `opts.cone` is set and none is supplied; ignores a supplied index
/// when `opts.cone` is unset.
pub fn measure_gains_with(
    kernel: &Kernel,
    opts: &GainOptions,
    cone: Option<&ConeIndex>,
) -> NoiseGains {
    let built;
    let cone = match (opts.cone, cone) {
        (false, _) => None,
        (true, Some(c)) => Some(c),
        (true, None) => {
            built = ConeIndex::build(kernel);
            Some(&built)
        }
    };
    let sources = noise_source_exprs(kernel);
    let execs = expr_executions(kernel);

    let mut param_srcs: Vec<ExprId> = Vec::new();
    let mut impulse_srcs: Vec<(ExprId, u64)> = Vec::new();
    for &src in &sources {
        let k_execs = execs[src.index()];
        if k_execs == 0 {
            continue; // dead arena node
        }
        if matches!(kernel.expr(src), ExprNode::LoadParam(..)) {
            // Coefficient errors are *multiplicative* in the signal path:
            // an impulse at zero state sees zero gain. Measure the mean
            // squared output sensitivity under random inputs instead.
            param_srcs.push(src);
        } else {
            impulse_srcs.push((src, k_execs));
        }
    }

    let mut gains = NoiseGains::new(kernel.expr_count());
    for (src, g2) in param_srcs
        .iter()
        .zip(param_sensitivities(kernel, &param_srcs, opts, cone))
    {
        gains.insert(*src, (0.0, g2));
    }
    for (src, g1, g2) in impulse_gains(kernel, &impulse_srcs, opts, cone) {
        gains.insert(src, (g1, g2));
    }
    gains
}

/// The original one-simulation-per-impulse measurement, kept as the
/// differential oracle for the batched path.
pub fn measure_gains_reference(kernel: &Kernel, opts: &GainOptions) -> NoiseGains {
    let sources = noise_source_exprs(kernel);
    let execs = expr_executions(kernel);
    let mut baseline = Baseline::new(kernel);

    let mut gains = NoiseGains::new(kernel.expr_count());
    for &src in &sources {
        let k_execs = execs[src.index()];
        if k_execs == 0 {
            continue; // dead arena node
        }
        if matches!(kernel.expr(src), ExprNode::LoadParam(..)) {
            let g2 = param_sensitivity(kernel, src, opts);
            gains.insert(src, (0.0, g2));
            continue;
        }
        let mut g1 = 0.0;
        let mut g2 = 0.0;
        for k in 0..k_execs {
            let (s1, s2) = impulse_response_sums(kernel, src, k as u32, opts, &mut baseline);
            g1 += s1;
            g2 += s2;
        }
        gains.insert(src, (g1, g2));
    }
    gains
}

/// Soft cap on impulse channels per batched sweep: a worker keeps
/// claiming sources until it holds at least this many lanes (a single
/// source with more execution instances than the cap still runs as one
/// batch, so per-source accumulation order is preserved).
const BATCH_LANES: usize = 128;

/// Batched impulse measurement for all non-parameter sources, sharded
/// across scoped worker threads. Returns `(source, G1, G2)` triples.
fn impulse_gains(
    kernel: &Kernel,
    srcs: &[(ExprId, u64)],
    opts: &GainOptions,
    cone: Option<&ConeIndex>,
) -> Vec<(ExprId, f64, f64)> {
    if srcs.is_empty() {
        return Vec::new();
    }
    // With a cone index, pack lanes of similar deviation lifetime into
    // the same batch (per-source sums are independent of batch
    // composition, and the final list is re-sorted by source anyway), so
    // short-lived batches retire wholesale instead of idling behind one
    // long-lived lane.
    let sorted;
    let srcs = match cone {
        Some(c) => {
            let mut v = srcs.to_vec();
            v.sort_by_key(|&(e, _)| (c.life(e).map_or(u32::MAX, |lf| lf), e.index()));
            sorted = v;
            &sorted[..]
        }
        None => srcs,
    };
    // Static lane retirement is bitwise-safe only while the zero-input
    // baseline provably stays finite, which holds exactly when every
    // expression's deviation lifetime is finite (no unbounded feedback
    // carrier reaches an output).
    let lives: Option<Vec<u32>> = cone.and_then(|c| {
        (0..kernel.expr_count())
            .map(|i| c.life(ExprId(i as u32)))
            .collect()
    });
    let lives = lives.as_deref();
    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(srcs.len());
    if threads <= 1 {
        let mut out = Vec::with_capacity(srcs.len());
        let all: Vec<usize> = (0..srcs.len()).collect();
        for chunk in all.chunks(chunk_len(srcs, BATCH_LANES)) {
            // chunks() of a precomputed length keeps sources grouped the
            // same way regardless of arrival order; correctness only
            // needs each source whole within one batch.
            run_impulse_batch(kernel, srcs, chunk, opts, cone, lives, &mut out);
        }
        out.sort_by_key(|&(e, _, _)| e.index());
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(ExprId, f64, f64)>> = Mutex::new(Vec::with_capacity(srcs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    // Claim whole sources until the lane budget is met.
                    let mut batch = Vec::new();
                    let mut lanes = 0usize;
                    while lanes < BATCH_LANES {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= srcs.len() {
                            break;
                        }
                        lanes += srcs[i].1 as usize;
                        batch.push(i);
                    }
                    if batch.is_empty() {
                        break;
                    }
                    run_impulse_batch(kernel, srcs, &batch, opts, cone, lives, &mut local);
                }
                results.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut out = results.into_inner().expect("worker panicked");
    out.sort_by_key(|&(e, _, _)| e.index());
    out
}

/// Batch size (in sources) that yields ~`target` lanes per batch for the
/// single-threaded path.
fn chunk_len(srcs: &[(ExprId, u64)], target: usize) -> usize {
    let total: u64 = srcs.iter().map(|&(_, k)| k).sum();
    let per_src = (total as usize).div_ceil(srcs.len());
    target.div_ceil(per_src.max(1)).max(1)
}

/// Runs one batched sweep over the sources listed in `batch` (indices
/// into `srcs`) and appends `(source, G1, G2)` per source.
///
/// Each lane performs exactly the solo-run arithmetic of
/// [`impulse_response_sums`]: same zero-input trajectory (carried by the
/// executor's internal baseline lane), same `(baseline + impulse) −
/// baseline` deviations accumulated in the same `(activation, output)`
/// order, same per-channel chunk-energy stopping rule — so the sums are
/// bitwise identical.
///
/// When `lives` is supplied (every expression's lifetime finite), lanes
/// whose deviation lifetime has elapsed retire early: all their
/// remaining reference terms are exactly `+0.0`, so skipping them only
/// needs a single `+ 0.0` normalization wherever the reference would
/// still have folded at least one such term.
fn run_impulse_batch(
    kernel: &Kernel,
    srcs: &[(ExprId, u64)],
    batch: &[usize],
    opts: &GainOptions,
    cone: Option<&ConeIndex>,
    lives: Option<&[u32]>,
    out: &mut Vec<(ExprId, f64, f64)>,
) {
    let mut channels = Vec::new();
    let mut spans: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for &si in batch {
        let (src, k_execs) = srcs[si];
        let start = channels.len();
        for k in 0..k_execs {
            channels.push(ImpulseChannel {
                target: src,
                activation: 0,
                exec: k as u32,
                amount: 1.0,
            });
        }
        spans.push((si, start..channels.len()));
    }
    let n_ch = channels.len();
    // Lifetime per channel id; `srcs` arrives life-sorted, so live lanes
    // stay sorted too and statically-dead lanes always form a prefix.
    let life_by_id: Option<Vec<u32>> =
        lives.map(|lv| channels.iter().map(|ch| lv[ch.target.index()]).collect());
    let mut ex = match cone {
        Some(c) => BatchExecutor::with_cone(kernel, channels, c),
        None => BatchExecutor::new(kernel, channels),
    };
    let zero = vec![0.0; kernel.inputs().len()];
    let mut s1 = vec![0.0; n_ch];
    let mut s2 = vec![0.0; n_ch];
    let mut chunk = vec![0.0; n_ch];
    let mut m = 0usize;
    while ex.lanes() > 0 {
        let chunk_end = (m + opts.min_activations).min(opts.max_activations);
        let l = ex.lanes();
        chunk[..l].fill(0.0);
        while m < chunk_end {
            ex.step(&zero);
            let base = ex.outputs_base();
            let outs = ex.outputs();
            let l = ex.lanes();
            for (lane, &id) in ex.channel_ids().iter().enumerate() {
                let (mut a, mut b, mut c) = (s1[id], s2[id], chunk[lane]);
                for (o, &bo) in base.iter().enumerate() {
                    let h = outs[o * l + lane] - bo;
                    a += h;
                    b += h * h;
                    c += h * h;
                }
                s1[id] = a;
                s2[id] = b;
                chunk[lane] = c;
            }
            m += 1;
            if let Some(lives) = &life_by_id {
                if m < chunk_end && !kernel.outputs().is_empty() {
                    // Mid-chunk static retirement: the reference folds at
                    // least one more (all-`+0.0`) activation for these
                    // lanes, so normalize the sums once.
                    let ids = ex.channel_ids();
                    let dead = ids.partition_point(|&id| (lives[id] as usize) < m);
                    if dead > 0 {
                        for &id in &ids[..dead] {
                            s1[id] += 0.0;
                            s2[id] += 0.0;
                        }
                        let keep: Vec<bool> = (0..l).map(|lane| lane >= dead).collect();
                        ex.retain(&keep);
                        chunk.copy_within(dead..l, 0);
                        if ex.lanes() == 0 {
                            break;
                        }
                    }
                }
            }
        }
        if m >= opts.max_activations || ex.lanes() == 0 {
            break;
        }
        // Retire channels: the chunk-energy test first (the reference
        // stops exactly here — no normalization), then statically-dead
        // energy survivors (the reference runs one more all-zero chunk
        // and stops at its boundary — normalize once).
        let l = ex.lanes();
        let mut keep = Vec::with_capacity(l);
        for (lane, &id) in ex.channel_ids().iter().enumerate() {
            let surviving = chunk[lane] > opts.tail_epsilon * s2[id].max(1e-300);
            let statically_dead = life_by_id
                .as_ref()
                .is_some_and(|lives| (lives[id] as usize) < m && !kernel.outputs().is_empty());
            if surviving && statically_dead {
                s1[id] += 0.0;
                s2[id] += 0.0;
            }
            keep.push(surviving && !statically_dead);
        }
        ex.retain(&keep);
    }
    for (si, span) in spans {
        // Per-source accumulation in execution-instance order, matching
        // the reference's `for k in 0..k_execs` fold.
        let mut g1 = 0.0;
        let mut g2 = 0.0;
        for id in span {
            g1 += s1[id];
            g2 += s2[id];
        }
        out.push((srcs[si].0, g1, g2));
    }
}

/// Mean squared output sensitivity to an offset on one coefficient load
/// site: `E[(∂y/∂c)²]` over random inputs. A fixed coefficient error `ε`
/// then contributes `ε²·G2` of output power, and averaging over
/// `ε ~ U(-q/2, q/2)` gives the `q²/12 · G2` used by the model.
///
/// The derivative is taken by a *small* finite difference: outputs are
/// linear in feed-forward coefficients but rational in feedback
/// coefficients (a unit offset there can destabilise the filter), so the
/// perturbation must stay in the linear regime.
fn param_sensitivity(kernel: &Kernel, src: ExprId, opts: &GainOptions) -> f64 {
    const DELTA: f64 = 1e-4;
    let n = opts.param_activations.max(1);
    let inputs = param_input_matrix(kernel, opts);
    let mut base_ex = Executor::new(kernel, FloatSem);
    let base = base_ex.run(&inputs);
    let sem = ImpulseSem {
        target: src,
        exec: u32::MAX,
        activation: u32::MAX,
        amount: DELTA,
        inner: FloatSem,
    };
    let mut pert_ex = Executor::new(kernel, sem);
    let pert = pert_ex.run(&inputs);
    let mut sum = 0.0;
    for (b, p) in base.iter().zip(&pert) {
        for (x, y) in b.iter().zip(p) {
            let d = (y - x) / DELTA;
            sum += d * d;
        }
    }
    sum / n as f64
}

/// The seeded random input matrix of the coefficient-sensitivity
/// measurement. Identical for every source (the RNG reseeds per call),
/// so the batched path generates it once per `measure_gains` call.
fn param_input_matrix(kernel: &Kernel, opts: &GainOptions) -> Vec<Vec<f64>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = opts.param_activations.max(1);
    let decls: Vec<(f64, f64)> = kernel.inputs().iter().map(|i| (i.lo, i.hi)).collect();
    let mut rng = StdRng::seed_from_u64(opts.param_seed);
    decls
        .iter()
        .map(|&(lo, hi)| {
            (0..n)
                .map(|_| if lo == hi { lo } else { rng.gen_range(lo..=hi) })
                .collect()
        })
        .collect()
}

/// Batched coefficient-sensitivity measurement: one shared input
/// matrix and a single batched sweep with one always-on `DELTA` lane per
/// source — each lane bitwise identical to the solo perturbed run of
/// [`param_sensitivity`], and the executor's internal baseline lane
/// standing in (bitwise) for the solo unperturbed run.
fn param_sensitivities(
    kernel: &Kernel,
    srcs: &[ExprId],
    opts: &GainOptions,
    cone: Option<&ConeIndex>,
) -> Vec<f64> {
    const DELTA: f64 = 1e-4;
    if srcs.is_empty() {
        return Vec::new();
    }
    let n = opts.param_activations.max(1);
    let inputs = param_input_matrix(kernel, opts);
    // With no input streams the reference runs zero activations; its
    // deviation fold is then empty and every sensitivity is +0.0.
    let acts = inputs.first().map_or(0, |v| v.len());
    let n_out = kernel.outputs().len();
    let l = srcs.len();
    let channels = srcs
        .iter()
        .map(|&src| ImpulseChannel {
            target: src,
            activation: u32::MAX,
            exec: u32::MAX,
            amount: DELTA,
        })
        .collect();
    let mut ex = match cone {
        Some(c) => BatchExecutor::with_cone(kernel, channels, c),
        None => BatchExecutor::new(kernel, channels),
    };
    // Base and perturbed trajectories per (lane, output), activation-
    // indexed.
    let mut base = vec![vec![0.0; acts]; n_out];
    let mut pert = vec![vec![0.0; acts]; l * n_out];
    let mut sample = vec![0.0; inputs.len()];
    for a in 0..acts {
        for (i, s) in inputs.iter().enumerate() {
            sample[i] = s[a];
        }
        ex.step(&sample);
        let outs = ex.outputs();
        let bouts = ex.outputs_base();
        for o in 0..n_out {
            base[o][a] = bouts[o];
            for lane in 0..l {
                pert[lane * n_out + o][a] = outs[o * l + lane];
            }
        }
    }
    (0..l)
        .map(|lane| {
            // The reference folds output-major, then activation: keep
            // that exact order so the sum is bitwise identical.
            let mut sum = 0.0;
            for (o, b) in base.iter().enumerate() {
                let p = &pert[lane * n_out + o];
                for (x, y) in b.iter().zip(p) {
                    let d = (y - x) / DELTA;
                    sum += d * d;
                }
            }
            sum / n as f64
        })
        .collect()
}

/// Lazily extended zero-input reference trajectory. With zero inputs an
/// LTI kernel settles at a constant output trajectory (all-zero for the
/// paper's kernels, but subtracting it keeps the measurement correct in
/// the presence of non-zero additive constants).
struct Baseline<'k> {
    ex: Executor<'k, FloatSem>,
    outs: Vec<Vec<f64>>,
    zero: Vec<f64>,
}

impl<'k> Baseline<'k> {
    fn new(kernel: &'k Kernel) -> Self {
        Baseline {
            ex: Executor::new(kernel, FloatSem),
            outs: Vec::new(),
            zero: vec![0.0; kernel.inputs().len()],
        }
    }

    fn get(&mut self, m: usize) -> &[f64] {
        while self.outs.len() <= m {
            let step = self.ex.step(&self.zero);
            self.outs.push(step);
        }
        &self.outs[m]
    }
}

/// Runs the kernel with a unit impulse added to `src`'s `k`-th execution
/// in activation 0 and returns `(Σ h, Σ h²)` over outputs and time.
fn impulse_response_sums(
    kernel: &Kernel,
    src: ExprId,
    k: u32,
    opts: &GainOptions,
    baseline: &mut Baseline<'_>,
) -> (f64, f64) {
    let sem = ImpulseSem {
        target: src,
        exec: k,
        activation: 0,
        amount: 1.0,
        inner: FloatSem,
    };
    let mut ex = Executor::new(kernel, sem);
    let zero = vec![0.0; kernel.inputs().len()];
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut m = 0usize;
    loop {
        let chunk_end = (m + opts.min_activations).min(opts.max_activations);
        let mut chunk_energy = 0.0;
        while m < chunk_end {
            let out = ex.step(&zero);
            let base = baseline.get(m);
            for (o, &v) in out.iter().enumerate() {
                let h = v - base[o];
                s1 += h;
                s2 += h * h;
                chunk_energy += h * h;
            }
            m += 1;
        }
        if m >= opts.max_activations {
            break;
        }
        // Stop when the response has died out.
        if chunk_energy <= opts.tail_epsilon * s2.max(1e-300) {
            break;
        }
    }
    (s1, s2)
}

/// Float semantics that adds `+1.0` to the value produced by one specific
/// execution instance of one expression (`exec == activation == u32::MAX`
/// perturbs *every* execution, used for coefficient sensitivity).
struct ImpulseSem {
    target: ExprId,
    exec: u32,
    activation: u32,
    amount: f64,
    inner: FloatSem,
}

impl ImpulseSem {
    #[inline]
    fn poke(&self, ctx: ExecCtx, e: ExprId, v: f64) -> f64 {
        if e != self.target {
            return v;
        }
        let always = self.exec == u32::MAX && self.activation == u32::MAX;
        if always || (ctx.exec == self.exec && ctx.activation == self.activation) {
            v + self.amount
        } else {
            v
        }
    }
}

impl Semantics for ImpulseSem {
    type Value = f64;

    fn zero(&mut self) -> f64 {
        0.0
    }

    fn constant(&mut self, ctx: ExecCtx, e: ExprId, v: f64) -> f64 {
        let v = self.inner.constant(ctx, e, v);
        self.poke(ctx, e, v)
    }

    fn input(&mut self, ctx: ExecCtx, e: ExprId, i: InputId, raw: f64) -> f64 {
        let v = self.inner.input(ctx, e, i, raw);
        self.poke(ctx, e, v)
    }

    fn param(&mut self, ctx: ExecCtx, e: ExprId, p: ParamId, idx: i64, raw: f64) -> f64 {
        let v = self.inner.param(ctx, e, p, idx, raw);
        self.poke(ctx, e, v)
    }

    fn load(&mut self, ctx: ExecCtx, e: ExprId, stored: f64) -> f64 {
        let v = self.inner.load(ctx, e, stored);
        self.poke(ctx, e, v)
    }

    fn un(&mut self, ctx: ExecCtx, e: ExprId, op: UnOp, a: f64) -> f64 {
        let v = self.inner.un(ctx, e, op, a);
        self.poke(ctx, e, v)
    }

    fn bin(&mut self, ctx: ExecCtx, e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
        let v = self.inner.bin(ctx, e, op, a, b);
        self.poke(ctx, e, v)
    }

    fn to_f64(&self, v: f64) -> f64 {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::parser::parse_kernel;

    const FIR4: &str = r#"
kernel fir4 {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.5, 0.25, -0.125, 0.0625 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    #[test]
    fn fir_input_gain_is_coefficient_energy() {
        let k = parse_kernel(FIR4).unwrap();
        let gains = measure_gains(&k, &GainOptions::default());
        // The input-conversion site's noise passes through the filter:
        // G1 = sum(c), G2 = sum(c^2).
        let (input_expr, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::ReadInput(_)))
            .unwrap();
        let (g1, g2) = gains.get(input_expr);
        let c = [0.5, 0.25, -0.125, 0.0625];
        let sum: f64 = c.iter().sum();
        let energy: f64 = c.iter().map(|v| v * v).sum();
        assert!((g1 - sum).abs() < 1e-12, "G1 {g1} vs {sum}");
        assert!((g2 - energy).abs() < 1e-12, "G2 {g2} vs {energy}");
    }

    #[test]
    fn fir_accumulator_add_gain_counts_trips() {
        let k = parse_kernel(FIR4).unwrap();
        let gains = measure_gains(&k, &GainOptions::default());
        // Each execution of the accumulator add reaches the output once
        // with unit gain; 4 executions per activation => G1 = G2 = 4.
        let (add_expr, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Add, _, _)))
            .unwrap();
        let (g1, g2) = gains.get(add_expr);
        assert!((g1 - 4.0).abs() < 1e-12, "G1 {g1}");
        assert!((g2 - 4.0).abs() < 1e-12, "G2 {g2}");
    }

    #[test]
    fn iir_feedback_amplifies_gains() {
        let src = r#"
kernel iir1 {
    input x range [-1, 1];
    output y;
    array yline[1];
    var t;
    t = 0.5 * x + 0.5 * yline[0];
    shiftin yline <- t;
    y = t;
}
"#;
        let k = parse_kernel(src).unwrap();
        let gains = measure_gains(&k, &GainOptions::default());
        // Noise at the output add recirculates: h = (1, .5, .25, ...):
        // G1 = 1/(1-0.5) = 2, G2 = 1/(1-0.25) = 4/3.
        let (add_expr, _) = k
            .exprs()
            .filter(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Add, _, _)))
            .last()
            .unwrap();
        let (g1, g2) = gains.get(add_expr);
        assert!((g1 - 2.0).abs() < 1e-6, "G1 {g1}");
        assert!((g2 - 4.0 / 3.0).abs() < 1e-6, "G2 {g2}");
    }

    #[test]
    fn executions_counts_match_structure() {
        let k = parse_kernel(FIR4).unwrap();
        let execs = expr_executions(&k);
        let (mul_expr, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)))
            .unwrap();
        assert_eq!(execs[mul_expr.index()], 4);
        let (input_expr, _) = k
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::ReadInput(_)))
            .unwrap();
        assert_eq!(execs[input_expr.index()], 1);
    }

    /// Asserts the batched and reference measurements agree bitwise on
    /// every source, for several thread counts.
    fn assert_batched_matches_reference(k: &Kernel, opts: &GainOptions) {
        let reference = measure_gains_reference(k, opts);
        for threads in [1usize, 3] {
            let opts = GainOptions { threads, ..*opts };
            let batched = measure_gains(k, &opts);
            assert_eq!(batched.len(), reference.len());
            for (e, (g1, g2)) in reference.iter() {
                let (b1, b2) = batched.get(e);
                assert_eq!(b1.to_bits(), g1.to_bits(), "G1 of {e:?}");
                assert_eq!(b2.to_bits(), g2.to_bits(), "G2 of {e:?}");
            }
        }
    }

    #[test]
    fn batched_gains_match_reference_on_fir() {
        let k = parse_kernel(FIR4).unwrap();
        assert_batched_matches_reference(&k, &GainOptions::default());
    }

    #[test]
    fn batched_gains_match_reference_on_iir() {
        let src = r#"
kernel iir1 {
    input x range [-1, 1];
    output y;
    array yline[1];
    var t;
    t = 0.5 * x + 0.5 * yline[0];
    shiftin yline <- t;
    y = t;
}
"#;
        let k = parse_kernel(src).unwrap();
        assert_batched_matches_reference(&k, &GainOptions::default());
        // Tiny batches force multiple sweeps and mid-sweep retirement.
        let tight = GainOptions {
            min_activations: 4,
            max_activations: 256,
            ..GainOptions::default()
        };
        assert_batched_matches_reference(&k, &tight);
    }

    #[test]
    fn dead_nodes_have_zero_gain() {
        let src = "kernel k { input x range [-1,1]; output y; var a; for i in 0..4 unroll 2 { a = x + x; } y = a; }";
        // Note: `x + x` is invalid (double use); build a correct variant.
        let src = src.replace("x + x", "x * 1.0");
        let k = parse_kernel(&src).unwrap();
        let gains = measure_gains(&k, &GainOptions::default());
        let execs = expr_executions(&k);
        for (e, _) in k.exprs() {
            if execs[e.index()] == 0 {
                assert_eq!(gains.get(e), (0.0, 0.0));
            }
        }
    }
}
