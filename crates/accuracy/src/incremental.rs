//! Incremental accuracy evaluation — the `EVALACC` hot path.
//!
//! The WLO search loops (tabu neighbourhood scans, `SETMAXWL` group
//! shrinking, scaling optimization) spend essentially all of their time
//! asking "does this candidate spec still meet the constraint?", yet each
//! move changes only a handful of word lengths. [`IncrementalEvaluator`]
//! exploits that: it precomputes an inverted index from [`SpecKey`] to the
//! noise sources whose contribution depends on that key, caches every
//! source's `(bias, var)` contribution, and consumes the spec's undo
//! journal ([`FixedPointSpec::changed_since`]) to re-evaluate only the
//! sources a trial touched — O(changed keys × fanout) per move instead of
//! O(all sources).
//!
//! # Exactness
//!
//! The engine is **bit-identical** to [`AnalyticalEvaluator`]'s full
//! recompute, by construction rather than by tolerance:
//!
//! * per-source contributions come from the same
//!   `AnalyticalEvaluator::contribution_at` code path, so a re-evaluated
//!   source produces the exact f64 pair a full walk would;
//! * totals are re-folded over the cached contributions in source order —
//!   the same associativity as the full recompute's loop — instead of
//!   being patched with subtract-and-add (which drifts in the last ulp).
//!
//! The fold is O(sources) in *additions only*; the expensive per-source
//! work (gain lookups, operand-grid resolution, noise statistics) is what
//! the index avoids. `tests/incremental_differential.rs` replays thousands
//! of random move/undo sequences and asserts bitwise equality on every
//! step.
//!
//! # Protocol
//!
//! See [`AccuracyEvaluator`]'s trait documentation: `begin` once, then
//! `trial_*` per candidate move, resolved by `commit_trial` /
//! `rollback_trial`; journaled writes applied outside a trial are reported
//! via `observe`. At most one trial may be outstanding.

use crate::model::{AccuracyEvaluator, AnalyticalEvaluator};
use slpwlo_fixedpoint::spec::{FixedPointSpec, SpecKey};
use std::cell::RefCell;
use std::collections::HashMap;

/// Mutable evaluation state, behind a [`RefCell`] so the evaluator can be
/// used through the shared-reference [`AccuracyEvaluator`] trait. The
/// type is deliberately `!Sync`; parallel sweeps construct one evaluator
/// per worker over the same shared [`AnalyticalEvaluator`].
#[derive(Debug)]
struct State {
    /// Committed `(bias, var)` contribution of every source.
    contrib: Vec<(f64, f64)>,
    /// Sources overwritten by the outstanding trial, with their previous
    /// contributions (for rollback), oldest first.
    saved: Vec<(u32, (f64, f64))>,
    /// Whether a trial is outstanding.
    pending: bool,
    /// Trial stamp per source, deduplicating touches within one trial.
    /// 64-bit so the monotonically growing stamp never wraps into a
    /// stale entry within any feasible session length.
    touched: Vec<u64>,
    /// Current trial id (stamp value).
    trial_id: u64,
    /// Whether `contrib` reflects some spec state (set by the first
    /// `begin`/resync).
    synced: bool,
}

/// Incremental `EVALACC`: evaluates candidate moves in O(Δ) by caching
/// per-source noise contributions over a base [`AnalyticalEvaluator`].
///
/// Construction is cheap (one index build over the base's sources); the
/// first [`AccuracyEvaluator::begin`] (or any full [`noise_db`] call)
/// pays one full evaluation to seed the cache.
///
/// [`noise_db`]: AccuracyEvaluator::noise_db
#[derive(Debug)]
pub struct IncrementalEvaluator<'a> {
    base: &'a AnalyticalEvaluator,
    /// Inverted index: key → indices of sources depending on it.
    index: HashMap<SpecKey, Vec<u32>>,
    state: RefCell<State>,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Builds the engine over a base evaluator. Call
    /// [`AccuracyEvaluator::begin`] with the working spec before issuing
    /// trials.
    pub fn new(base: &'a AnalyticalEvaluator) -> Self {
        let n = base.source_count();
        let mut index: HashMap<SpecKey, Vec<u32>> = HashMap::new();
        let mut keys = Vec::new();
        for i in 0..n {
            base.source_keys(i, &mut keys);
            keys.sort_unstable_by_key(spec_key_ord);
            keys.dedup();
            for &key in &keys {
                index.entry(key).or_default().push(i as u32);
            }
        }
        IncrementalEvaluator {
            base,
            index,
            state: RefCell::new(State {
                contrib: vec![(0.0, 0.0); n],
                saved: Vec::new(),
                pending: false,
                touched: vec![0; n],
                trial_id: 0,
                synced: false,
            }),
        }
    }

    /// Builds the engine and seeds its cache from `spec` in one step.
    pub fn with_spec(base: &'a AnalyticalEvaluator, spec: &FixedPointSpec) -> Self {
        let eval = Self::new(base);
        eval.begin(spec);
        eval
    }

    /// Sources whose contribution depends on `key` (index fanout).
    pub fn fanout(&self, key: SpecKey) -> usize {
        self.index.get(&key).map_or(0, Vec::len)
    }

    /// Recomputes every contribution from `spec`, discarding any
    /// outstanding trial.
    fn resync(&self, spec: &FixedPointSpec) {
        let st = &mut *self.state.borrow_mut();
        for (i, slot) in st.contrib.iter_mut().enumerate() {
            *slot = self.base.contribution_at(i, spec);
        }
        st.saved.clear();
        st.pending = false;
        st.synced = true;
    }

    /// Folds the cached contributions into the linear noise power —
    /// source order, matching [`AnalyticalEvaluator::noise_power`].
    fn fold_power(st: &State) -> f64 {
        let mut bias = 0.0;
        let mut var = 0.0;
        for &(b, v) in &st.contrib {
            bias += b;
            var += v;
        }
        bias * bias + var
    }

    fn to_db(p: f64) -> f64 {
        if p <= 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * p.log10()
        }
    }

    /// Re-evaluates the sources affected by the journaled writes since
    /// `mark`, remembering previous values when `save` is set.
    fn apply_changes(&self, st: &mut State, spec: &FixedPointSpec, mark: usize, save: bool) {
        st.trial_id += 1;
        let id = st.trial_id;
        for key in spec.changed_since(mark) {
            let Some(sources) = self.index.get(&key) else {
                continue;
            };
            for &si in sources {
                let i = si as usize;
                if st.touched[i] == id {
                    continue;
                }
                st.touched[i] = id;
                if save {
                    st.saved.push((si, st.contrib[i]));
                }
                st.contrib[i] = self.base.contribution_at(i, spec);
            }
        }
    }
}

impl AccuracyEvaluator for IncrementalEvaluator<'_> {
    /// Full evaluation; also resyncs the cache to `spec` (and drops any
    /// outstanding trial), so it stays usable as a plain evaluator.
    fn noise_db(&self, spec: &FixedPointSpec) -> f64 {
        self.resync(spec);
        Self::to_db(Self::fold_power(&self.state.borrow()))
    }

    fn begin(&self, spec: &FixedPointSpec) {
        self.resync(spec);
    }

    fn trial_noise_db(&self, spec: &FixedPointSpec, mark: usize) -> f64 {
        let st = &mut *self.state.borrow_mut();
        assert!(
            !st.pending,
            "unresolved trial: commit_trial() or rollback_trial() first"
        );
        assert!(st.synced, "begin() must seed the cache before trials");
        st.pending = true;
        self.apply_changes(st, spec, mark, true);
        Self::to_db(Self::fold_power(st))
    }

    fn commit_trial(&self) {
        let st = &mut *self.state.borrow_mut();
        st.saved.clear();
        st.pending = false;
    }

    fn rollback_trial(&self) {
        let st = &mut *self.state.borrow_mut();
        while let Some((si, old)) = st.saved.pop() {
            st.contrib[si as usize] = old;
        }
        st.pending = false;
    }

    fn observe(&self, spec: &FixedPointSpec, mark: usize) {
        let mut guard = self.state.borrow_mut();
        if !guard.synced {
            drop(guard);
            self.resync(spec);
            return;
        }
        let st = &mut *guard;
        assert!(
            !st.pending,
            "unresolved trial: commit_trial() or rollback_trial() first"
        );
        self.apply_changes(st, spec, mark, false);
    }
}

/// Total order over [`SpecKey`] for index construction (the key type
/// deliberately does not implement `Ord`).
fn spec_key_ord(key: &SpecKey) -> (u8, u32) {
    match key {
        SpecKey::Expr(e) => (0, e.index() as u32),
        SpecKey::Array(a) => (1, a.index() as u32),
        SpecKey::Param(p) => (2, p.index() as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::Kernel;

    const FIR4: &str = r#"
kernel fir4 {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.5, 0.25, -0.125, 0.0625 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn setup() -> (Kernel, FixedPointSpec, AnalyticalEvaluator) {
        let k = parse_kernel(FIR4).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let eval = AnalyticalEvaluator::with_defaults(&k);
        (k, spec, eval)
    }

    #[test]
    fn trial_matches_full_recompute_bitwise() {
        let (k, mut spec, full) = setup();
        let inc = IncrementalEvaluator::with_spec(&full, &spec);
        assert_eq!(
            inc.trial_noise_db(&spec, spec.mark()).to_bits(),
            full.noise_db(&spec).to_bits(),
            "empty trial must equal the full recompute"
        );
        inc.rollback_trial();
        for key in spec.optimizable_keys(&k) {
            for wl in [8, 16, 24] {
                let mark = spec.mark();
                spec.set_wl(key, wl);
                let db_inc = inc.trial_noise_db(&spec, mark);
                let db_full = full.noise_db(&spec);
                assert_eq!(
                    db_inc.to_bits(),
                    db_full.to_bits(),
                    "trial {key}={wl}: {db_inc} vs {db_full}"
                );
                spec.rollback(mark);
                inc.rollback_trial();
            }
        }
        // After all rollbacks the cache must still match.
        let mark = spec.mark();
        assert_eq!(
            inc.trial_noise_db(&spec, mark).to_bits(),
            full.noise_db(&spec).to_bits()
        );
        inc.commit_trial();
    }

    #[test]
    fn commit_keeps_the_trial_state() {
        let (k, mut spec, full) = setup();
        let inc = IncrementalEvaluator::with_spec(&full, &spec);
        let key = spec.optimizable_keys(&k)[0];
        let mark = spec.mark();
        spec.set_wl(key, 8);
        let db = inc.trial_noise_db(&spec, mark);
        spec.commit(mark);
        inc.commit_trial();
        // A no-op trial after commit sees the committed state.
        let mark2 = spec.mark();
        assert_eq!(inc.trial_noise_db(&spec, mark2).to_bits(), db.to_bits());
        inc.rollback_trial();
    }

    #[test]
    fn observe_tracks_untrialed_writes() {
        let (k, mut spec, full) = setup();
        let inc = IncrementalEvaluator::with_spec(&full, &spec);
        let mark = spec.mark();
        for key in spec.optimizable_keys(&k) {
            spec.set_wl(key, 16);
        }
        inc.observe(&spec, mark);
        let mark2 = spec.mark();
        assert_eq!(
            inc.trial_noise_db(&spec, mark2).to_bits(),
            full.noise_db(&spec).to_bits()
        );
        inc.rollback_trial();
    }

    #[test]
    #[should_panic(expected = "unresolved trial")]
    fn double_trial_panics() {
        let (k, mut spec, full) = setup();
        let inc = IncrementalEvaluator::with_spec(&full, &spec);
        let key = spec.optimizable_keys(&k)[0];
        let mark = spec.mark();
        spec.set_wl(key, 16);
        let _ = inc.trial_noise_db(&spec, mark);
        let _ = inc.trial_noise_db(&spec, mark);
    }

    #[test]
    fn index_covers_every_optimizable_key() {
        let (k, spec, full) = setup();
        let inc = IncrementalEvaluator::new(&full);
        // Every key WLO may mutate must reach at least one source —
        // otherwise a trial on it would silently change nothing.
        for key in spec.optimizable_keys(&k) {
            assert!(inc.fanout(key) > 0, "key {key} has no indexed sources");
        }
    }
}
